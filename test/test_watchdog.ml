(* Tests for the runtime watchdog: wall-clock timeouts, deadlock verdicts
   over parked receives, progress heartbeats deferring the verdict,
   cooperative interpreter cancellation, and the end-to-end contract that
   a parked receive returns [Error `Expired] instead of hanging. *)

let rec wait_for ?(deadline_s = 5.) t pred =
  if pred (Runtime.Watchdog.verdict t) then Runtime.Watchdog.verdict t
  else if deadline_s <= 0. then Runtime.Watchdog.verdict t
  else begin
    Unix.sleepf 0.02;
    wait_for ~deadline_s:(deadline_s -. 0.02) t pred
  end

let test_timeout_verdict () =
  let t = Runtime.Watchdog.create ~grace_s:0. ~timeout_s:0.05 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Watchdog.stop t)
    (fun () ->
      let v = wait_for t (fun v -> v <> Runtime.Watchdog.Running) in
      Alcotest.(check bool) "timed out" true (v = Runtime.Watchdog.Timed_out);
      Alcotest.(check bool) "cancel set" true
        (Atomic.get (Runtime.Watchdog.cancel_token t)))

let test_deadlock_verdict_expires_waiters () =
  let t = Runtime.Watchdog.create ~grace_s:0.1 ~timeout_s:30. () in
  let expired = Atomic.make false in
  Fun.protect
    ~finally:(fun () -> Runtime.Watchdog.stop t)
    (fun () ->
      let _ticket =
        Runtime.Watchdog.register t ~label:"task1:x<-child0" ~expire:(fun () ->
            Atomic.set expired true)
      in
      let v = wait_for t (fun v -> v <> Runtime.Watchdog.Running) in
      (match v with
      | Runtime.Watchdog.Deadlocked labels ->
          Alcotest.(check (list string)) "waiting tasks" [ "task1:x<-child0" ] labels
      | _ -> Alcotest.fail "expected a deadlock verdict");
      Alcotest.(check bool) "waiter expired" true (Atomic.get expired))

let test_heartbeat_defers_deadlock () =
  let t = Runtime.Watchdog.create ~grace_s:0.15 ~timeout_s:30. () in
  Fun.protect
    ~finally:(fun () -> Runtime.Watchdog.stop t)
    (fun () ->
      let ticket = Runtime.Watchdog.register t ~label:"parked" ~expire:ignore in
      (* keep pulsing for ~0.4 s: well past the grace window, but progress
         is visible, so no verdict may fire *)
      for _ = 1 to 8 do
        Unix.sleepf 0.05;
        Runtime.Watchdog.beat t
      done;
      Alcotest.(check bool) "still running" true
        (Runtime.Watchdog.verdict t = Runtime.Watchdog.Running);
      Runtime.Watchdog.unregister t ticket;
      (* with no parked receive left, silence is idleness, not deadlock *)
      Unix.sleepf 0.3;
      Alcotest.(check bool) "idle is not deadlock" true
        (Runtime.Watchdog.verdict t = Runtime.Watchdog.Running))

let test_late_register_expires_immediately () =
  let t = Runtime.Watchdog.create ~grace_s:0. ~timeout_s:0.02 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Watchdog.stop t)
    (fun () ->
      ignore (wait_for t (fun v -> v <> Runtime.Watchdog.Running));
      let expired = ref false in
      ignore
        (Runtime.Watchdog.register t ~label:"late" ~expire:(fun () ->
             expired := true));
      Alcotest.(check bool) "expired on the spot" true !expired)

let test_eval_cancellation () =
  let supervision =
    { Interp.Eval.cancel = Atomic.make true; pulse = Atomic.make 0 }
  in
  let prog =
    Minic.Frontend.compile
      "int main() { int i; i = 0; while (i < 100000000) { i = i + 1; } return \
       i; }"
  in
  let store : Interp.Eval.store = Hashtbl.create 8 in
  let env =
    Interp.Eval.make_env ~supervision
      ~max_steps:1_000_000_000
      ~profile:(Interp.Profile.create (Interp.Eval.profile_slots prog))
      store
  in
  match
    List.iter
      (fun f ->
        if f.Minic.Ast.fname = "main" then
          Interp.Eval.exec_block_env env f.Minic.Ast.fbody)
      prog.Minic.Ast.funcs
  with
  | () -> Alcotest.fail "expected cancellation"
  | exception Interp.Eval.Cancelled -> ()
  | exception Interp.Eval.Return_exn _ -> Alcotest.fail "ran to completion"

(* End-to-end: a receive on a channel nobody writes returns
   [Error `Expired] under a watchdog verdict instead of hanging. *)
let test_parked_recv_expires () =
  let pool = Runtime.Pool.create ~domains:2 () in
  let t = Runtime.Watchdog.create ~grace_s:0.1 ~timeout_s:30. () in
  Fun.protect
    ~finally:(fun () ->
      Runtime.Watchdog.stop t;
      Runtime.Pool.shutdown pool)
    (fun () ->
      let c = Runtime.Channel.create () in
      let r =
        Runtime.Pool.run pool (fun () ->
            Runtime.Channel.recv ~watch:t ~label:"orphan" pool c)
      in
      Alcotest.(check bool) "recv expired" true (r = Error `Expired);
      match Runtime.Watchdog.verdict t with
      | Runtime.Watchdog.Deadlocked [ "orphan" ] -> ()
      | _ -> Alcotest.fail "expected deadlock verdict naming the receive")

(* End-to-end through the execution runtime: a program whose execution
   exceeds the wall deadline comes back as a typed Timeout (exit code 4),
   not a hang. *)
let test_exec_timeout_typed () =
  let src =
    "int main() { int i; int s; s = 0; i = 0; while (i < 200000000) { s = s + \
     i; i = i + 1; } return s; }"
  in
  let prog = Minic.Frontend.compile src in
  (* profiling would run the whole loop; build the solution from a stub
     profile instead — execution semantics do not depend on it *)
  let profile = Interp.Profile.create (Interp.Eval.profile_slots prog) in
  let htg = Htg.Build.build prog profile in
  let sol =
    {
      Parcore.Solution.node_id = htg.Htg.Node.id;
      main_class = 0;
      time_us = 0.;
      extra_units = [| 0 |];
      kind = Parcore.Solution.Seq [||];
      degrade = Parcore.Solution.Exact;
    }
  in
  match
    Runtime.Exec.run_result ~domains:2 ~max_steps:1_000_000_000 ~timeout_s:0.1
      prog htg sol
  with
  | Ok _ -> Alcotest.fail "expected a timeout"
  | Error e ->
      Alcotest.(check bool) "kind is timeout" true
        (e.Mpsoc_error.kind = Mpsoc_error.Timeout);
      Alcotest.(check int) "exit code 4" 4 (Mpsoc_error.exit_code e)

let suite =
  [
    Alcotest.test_case "wall-clock timeout verdict" `Quick test_timeout_verdict;
    Alcotest.test_case "deadlock verdict expires waiters" `Quick
      test_deadlock_verdict_expires_waiters;
    Alcotest.test_case "heartbeat defers the verdict" `Quick
      test_heartbeat_defers_deadlock;
    Alcotest.test_case "late register expires immediately" `Quick
      test_late_register_expires_immediately;
    Alcotest.test_case "interpreter cancels cooperatively" `Quick
      test_eval_cancellation;
    Alcotest.test_case "parked receive expires instead of hanging" `Quick
      test_parked_recv_expires;
    Alcotest.test_case "execution timeout is a typed error" `Quick
      test_exec_timeout_typed;
  ]
