(* Tests for the ILP library: simplex on hand-checked LPs, branch & bound
   against the exhaustive reference solver, and qcheck properties on random
   models. *)

open Ilp

let feq ?(eps = 1e-5) a b = Float.abs (a -. b) <= eps

let check_feq msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

(* max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0  -> (4,0), obj 12 *)
let test_simplex_basic () =
  let m = Model.create () in
  let x = Model.cont_var m "x" in
  let y = Model.cont_var m "y" in
  let open Lin_expr in
  Model.le m (add (term x) (term y)) (constant 4.);
  Model.le m (add (term x) (term ~coef:3. y)) (constant 6.);
  Model.set_objective m Model.Maximize (add (term ~coef:3. x) (term ~coef:2. y));
  match Simplex.solve m with
  | Simplex.Optimal { obj; x = sol } ->
      check_feq "objective" 12. obj;
      check_feq "x" 4. sol.(x);
      check_feq "y" 0. sol.(y)
  | _ -> Alcotest.fail "expected optimal"

(* min x + y st x + y >= 2, x - y = 0 -> (1,1), obj 2 *)
let test_simplex_eq_ge () =
  let m = Model.create () in
  let x = Model.cont_var m "x" in
  let y = Model.cont_var m "y" in
  let open Lin_expr in
  Model.ge m (add (term x) (term y)) (constant 2.);
  Model.eq m (sub (term x) (term y)) (constant 0.);
  Model.set_objective m Model.Minimize (add (term x) (term y));
  match Simplex.solve m with
  | Simplex.Optimal { obj; x = sol } ->
      check_feq "objective" 2. obj;
      check_feq "x" 1. sol.(x);
      check_feq "y" 1. sol.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let m = Model.create () in
  let x = Model.cont_var m "x" in
  let open Lin_expr in
  Model.ge m (term x) (constant 5.);
  Model.le m (term x) (constant 2.);
  Model.set_objective m Model.Minimize (term x);
  match Simplex.solve m with
  | Simplex.Infeasible -> ()
  | Simplex.Optimal { obj; _ } -> Alcotest.failf "expected infeasible, got %g" obj
  | Simplex.Unbounded -> Alcotest.fail "expected infeasible, got unbounded"
  | Simplex.Stalled -> Alcotest.fail "expected infeasible, got stalled"

let test_simplex_unbounded () =
  let m = Model.create () in
  let x = Model.cont_var m "x" in
  let y = Model.cont_var m "y" in
  let open Lin_expr in
  Model.ge m (add (term x) (term y)) (constant 1.);
  Model.set_objective m Model.Maximize (term x);
  match Simplex.solve m with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal { obj; _ } -> Alcotest.failf "expected unbounded, got %g" obj
  | Simplex.Infeasible -> Alcotest.fail "expected unbounded, got infeasible"
  | Simplex.Stalled -> Alcotest.fail "expected unbounded, got stalled"

(* upper bounds handled without extra rows: max x + y, x <= 3 (bound),
   y <= 2 (bound), x + y <= 4 -> obj 4 *)
let test_simplex_bounds () =
  let m = Model.create () in
  let x = Model.cont_var ~ub:3. m "x" in
  let y = Model.cont_var ~ub:2. m "y" in
  let open Lin_expr in
  Model.le m (add (term x) (term y)) (constant 4.);
  Model.set_objective m Model.Maximize (add (term x) (term y));
  match Simplex.solve m with
  | Simplex.Optimal { obj; _ } -> check_feq "objective" 4. obj
  | _ -> Alcotest.fail "expected optimal"

(* negative lower bounds *)
let test_simplex_neg_lb () =
  let m = Model.create () in
  let x = Model.cont_var ~lb:(-5.) ~ub:5. m "x" in
  let open Lin_expr in
  Model.ge m (term x) (constant (-3.));
  Model.set_objective m Model.Minimize (term x);
  match Simplex.solve m with
  | Simplex.Optimal { obj; x = sol } ->
      check_feq "objective" (-3.) obj;
      check_feq "x" (-3.) sol.(x)
  | _ -> Alcotest.fail "expected optimal"

(* degenerate LP that tends to cycle without anti-cycling *)
let test_simplex_degenerate () =
  let m = Model.create () in
  let x1 = Model.cont_var m "x1" in
  let x2 = Model.cont_var m "x2" in
  let x3 = Model.cont_var m "x3" in
  let x4 = Model.cont_var m "x4" in
  let open Lin_expr in
  Model.le m
    (sum [ term ~coef:0.5 x1; term ~coef:(-5.5) x2; term ~coef:(-2.5) x3; term ~coef:9. x4 ])
    (constant 0.);
  Model.le m
    (sum [ term ~coef:0.5 x1; term ~coef:(-1.5) x2; term ~coef:(-0.5) x3; term x4 ])
    (constant 0.);
  Model.le m (term x1) (constant 1.);
  Model.set_objective m Model.Maximize
    (sum [ term ~coef:10. x1; term ~coef:(-57.) x2; term ~coef:(-9.) x3; term ~coef:(-24.) x4 ]);
  match Simplex.solve m with
  | Simplex.Optimal { obj; _ } -> check_feq "objective" 1. obj
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Branch & bound                                                      *)
(* ------------------------------------------------------------------ *)

(* knapsack: max 10a+13b+7c st 3a+4b+2c <= 6, binaries -> a=0 b=c=1 obj 20 *)
let test_bb_knapsack () =
  let m = Model.create () in
  let a = Model.bool_var m "a" in
  let b = Model.bool_var m "b" in
  let c = Model.bool_var m "c" in
  let open Lin_expr in
  Model.le m
    (sum [ term ~coef:3. a; term ~coef:4. b; term ~coef:2. c ])
    (constant 6.);
  Model.set_objective m Model.Maximize
    (sum [ term ~coef:10. a; term ~coef:13. b; term ~coef:7. c ]);
  let sol = Branch_bound.solve m in
  Alcotest.(check bool) "optimal" true (sol.Branch_bound.status = Branch_bound.Optimal);
  check_feq "objective" 20. sol.Branch_bound.obj

(* integer rounding matters: max y st y <= 2.5 -> 2 *)
let test_bb_int_cut () =
  let m = Model.create () in
  let y = Model.int_var ~ub:10. m "y" in
  let open Lin_expr in
  Model.le m (term ~coef:2. y) (constant 5.);
  Model.set_objective m Model.Maximize (term y);
  let sol = Branch_bound.solve m in
  check_feq "objective" 2. sol.Branch_bound.obj

let test_bb_infeasible () =
  let m = Model.create () in
  let a = Model.bool_var m "a" in
  let b = Model.bool_var m "b" in
  let open Lin_expr in
  Model.eq m (add (term a) (term b)) (constant 1.);
  Model.ge m (add (term a) (term b)) (constant 2.);
  Model.set_objective m Model.Minimize (term a);
  let sol = Branch_bound.solve m in
  Alcotest.(check bool) "infeasible" true
    (sol.Branch_bound.status = Branch_bound.Infeasible)

(* and_var linearization behaves like conjunction *)
let test_and_var () =
  List.iter
    (fun (xa, xb) ->
      let m = Model.create () in
      let a = Model.bool_var m "a" in
      let b = Model.bool_var m "b" in
      let z = Model.and_var m a b in
      let open Lin_expr in
      Model.eq m (term a) (constant xa);
      Model.eq m (term b) (constant xb);
      (* force z to its implied value by optimizing both directions *)
      Model.set_objective m Model.Maximize (term z);
      let hi = Branch_bound.solve m in
      Model.set_objective m Model.Minimize (term z);
      let lo = Branch_bound.solve m in
      let expected = if xa = 1. && xb = 1. then 1. else 0. in
      (* max: AND can only be 1 when both are 1 *)
      check_feq "and upper" expected hi.Branch_bound.obj;
      (* min: AND is forced to 1 when both are 1 *)
      check_feq "and lower" expected lo.Branch_bound.obj)
    [ (0., 0.); (0., 1.); (1., 0.); (1., 1.) ]

(* mixed integer + continuous *)
let test_bb_mixed () =
  let m = Model.create () in
  let k = Model.int_var ~ub:5. m "k" in
  let x = Model.cont_var ~ub:10. m "x" in
  let open Lin_expr in
  (* x <= 1.5 k ; maximize x - 0.1 k -> k as small as possible per x *)
  Model.le m (sub (term x) (term ~coef:1.5 k)) (constant 0.);
  Model.set_objective m Model.Maximize (sub (term x) (term ~coef:0.1 k));
  let sol = Branch_bound.solve m in
  (* best: k=5, x=7.5, obj 7.0 *)
  check_feq "objective" 7.0 sol.Branch_bound.obj

(* ------------------------------------------------------------------ *)
(* Random cross-check vs exhaustive                                    *)
(* ------------------------------------------------------------------ *)

let random_model rand =
  let int_range lo hi st = lo + Random.State.int st (hi - lo + 1) in
  let bool st = Random.State.bool st in
  let nb = int_range 1 5 rand in
  let nc = int_range 1 5 rand in
  let m = Model.create () in
  let vars =
    List.init nb (fun i ->
        Model.bool_var m (Printf.sprintf "b%d" i))
  in
  (* random constraints with small integer coefficients *)
  for ci = 0 to nc - 1 do
    let terms =
      List.filter_map
        (fun v ->
          let c = int_range (-3) 3 rand in
          if c = 0 then None else Some (Lin_expr.term ~coef:(float_of_int c) v))
        vars
    in
    if List.length terms > 0 then begin
      let bound = float_of_int (int_range (-4) 6 rand) in
      let op = int_range 0 2 rand in
      let e = Lin_expr.sum terms in
      match op with
      | 0 -> Model.le ~name:(Printf.sprintf "c%d" ci) m e (Lin_expr.constant bound)
      | 1 -> Model.ge ~name:(Printf.sprintf "c%d" ci) m e (Lin_expr.constant bound)
      | _ ->
          (* equalities are often infeasible with random bounds; bias the
             bound to something attainable *)
          let k = int_range 0 (List.length terms) rand in
          Model.eq ~name:(Printf.sprintf "c%d" ci) m e
            (Lin_expr.constant (float_of_int k))
    end
  done;
  let obj =
    Lin_expr.sum
      (List.map
         (fun v ->
           Lin_expr.term ~coef:(float_of_int (int_range (-5) 5 rand)) v)
         vars)
  in
  let sense = if bool rand then Model.Minimize else Model.Maximize in
  Model.set_objective m sense obj;
  m

let model_arb = QCheck.make ~print:(fun m -> Fmt.str "%a" Model.pp m) random_model

let test_bb_vs_exhaustive =
  QCheck.Test.make ~count:300 ~name:"branch&bound matches exhaustive" model_arb
    (fun m ->
      let bb = Branch_bound.solve m in
      let ex = Exhaustive.solve m in
      match (bb.Branch_bound.status, ex.Exhaustive.x) with
      | Branch_bound.Infeasible, None -> true
      | Branch_bound.Optimal, Some _ ->
          feq ~eps:1e-4 bb.Branch_bound.obj ex.Exhaustive.obj
      | Branch_bound.Optimal, None | Branch_bound.Infeasible, Some _ -> false
      | _ -> false)

(* any feasible integer point must not beat the reported optimum *)
let test_bb_optimality_bound =
  QCheck.Test.make ~count:200 ~name:"no feasible point beats B&B optimum"
    (QCheck.pair model_arb (QCheck.list_of_size (QCheck.Gen.return 8) (QCheck.float_bound_inclusive 1.)))
    (fun (m, probes) ->
      let bb = Branch_bound.solve m in
      match bb.Branch_bound.status with
      | Branch_bound.Optimal ->
          let n = Model.num_vars m in
          List.for_all
            (fun seed ->
              let y =
                Array.init n (fun i ->
                    if Float.rem (seed *. float_of_int (i + 3) *. 7.919) 1. > 0.5
                    then 1.
                    else 0.)
              in
              if Model.feasible m (fun v -> y.(v)) then
                let o = Model.objective_value m (fun v -> y.(v)) in
                match m.Model.obj_sense with
                | Model.Minimize -> o >= bb.Branch_bound.obj -. 1e-4
                | Model.Maximize -> o <= bb.Branch_bound.obj +. 1e-4
              else true)
            probes
      | _ -> true)

let suite =
  [
    Alcotest.test_case "simplex basic max" `Quick test_simplex_basic;
    Alcotest.test_case "simplex eq+ge" `Quick test_simplex_eq_ge;
    Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex var bounds" `Quick test_simplex_bounds;
    Alcotest.test_case "simplex negative lb" `Quick test_simplex_neg_lb;
    Alcotest.test_case "simplex degenerate" `Quick test_simplex_degenerate;
    Alcotest.test_case "bb knapsack" `Quick test_bb_knapsack;
    Alcotest.test_case "bb integer cut" `Quick test_bb_int_cut;
    Alcotest.test_case "bb infeasible" `Quick test_bb_infeasible;
    Alcotest.test_case "and_var truth table" `Quick test_and_var;
    Alcotest.test_case "bb mixed int/cont" `Quick test_bb_mixed;
    QCheck_alcotest.to_alcotest test_bb_vs_exhaustive;
    QCheck_alcotest.to_alcotest test_bb_optimality_bound;
  ]

(* ------------------------------------------------------------------ *)
(* LP-format export                                                    *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_lp_format () =
  let m = Model.create ~name:"demo" () in
  let a = Model.bool_var m "a" in
  let k = Model.int_var ~ub:7. m "k" in
  let x = Model.cont_var ~ub:3.5 m "x" in
  let open Lin_expr in
  Model.le ~name:"cap" m (sum [ term ~coef:2. a; term k; term x ]) (constant 9.);
  Model.ge ~name:"floor" m (term x) (constant 0.5);
  Model.eq ~name:"tie" m (sub (term k) (term ~coef:3. a)) (constant 0.);
  Model.set_objective m Model.Maximize (add (term x) (term ~coef:4. k));
  let s = Lp_format.to_string m in
  Alcotest.(check bool) "sections" true
    (contains s "Maximize" && contains s "Subject To" && contains s "Bounds"
    && contains s "Binaries" && contains s "Generals" && contains s "End");
  Alcotest.(check bool) "constraint names" true
    (contains s "cap:" && contains s "floor:" && contains s "tie:");
  Alcotest.(check bool) "coefficients" true (contains s "2 a");
  Alcotest.(check bool) "var bound" true (contains s "3.5")

let test_lp_format_sanitize () =
  let m = Model.create () in
  let v = Model.bool_var m "x[1][2]" in
  Model.set_objective m Model.Minimize (Lin_expr.term v);
  let s = Lp_format.to_string m in
  Alcotest.(check bool) "no brackets survive" true
    (not (contains s "x[1]"))

let suite =
  suite
  @ [
      Alcotest.test_case "lp-format export" `Quick test_lp_format;
      Alcotest.test_case "lp-format sanitize" `Quick test_lp_format_sanitize;
    ]

(* ------------------------------------------------------------------ *)
(* Additional solver edge cases                                        *)
(* ------------------------------------------------------------------ *)

(* equality-only system with a unique solution *)
let test_simplex_equalities_only () =
  let m = Model.create () in
  let x = Model.cont_var m "x" in
  let y = Model.cont_var m "y" in
  let open Lin_expr in
  Model.eq m (add (term x) (term y)) (constant 10.);
  Model.eq m (sub (term x) (term y)) (constant 4.);
  Model.set_objective m Model.Minimize (term x);
  match Simplex.solve m with
  | Simplex.Optimal { x = sol; _ } ->
      check_feq "x" 7. sol.(x);
      check_feq "y" 3. sol.(y)
  | _ -> Alcotest.fail "expected optimal"

(* redundant constraints must not confuse phase 1 *)
let test_simplex_redundant_rows () =
  let m = Model.create () in
  let x = Model.cont_var ~ub:5. m "x" in
  let open Lin_expr in
  Model.le m (term x) (constant 4.);
  Model.le m (term x) (constant 4.);
  Model.eq m (term ~coef:2. x) (add (term x) (term x));
  (* 2x = 2x: vacuous *)
  Model.set_objective m Model.Maximize (term x);
  match Simplex.solve m with
  | Simplex.Optimal { obj; _ } -> check_feq "objective" 4. obj
  | _ -> Alcotest.fail "expected optimal"

(* warm start worse than optimum must not block improvement *)
let test_bb_warm_start_improved () =
  let m = Model.create () in
  let a = Model.bool_var m "a" in
  let b = Model.bool_var m "b" in
  let open Lin_expr in
  Model.le m (add (term a) (term b)) (constant 2.);
  Model.set_objective m Model.Maximize (add (term ~coef:5. a) (term ~coef:3. b));
  let warm = [| 0.; 0. |] in
  let sol = Branch_bound.solve ~warm_start:warm m in
  check_feq "improves past warm start" 8. sol.Branch_bound.obj

(* infeasible warm start is ignored, not trusted *)
let test_bb_warm_start_infeasible_ignored () =
  let m = Model.create () in
  let a = Model.bool_var m "a" in
  let open Lin_expr in
  Model.le m (term a) (constant 0.);
  Model.set_objective m Model.Maximize (term a);
  let warm = [| 1. |] in
  (* violates a <= 0 *)
  let sol = Branch_bound.solve ~warm_start:warm m in
  check_feq "solves correctly anyway" 0. sol.Branch_bound.obj

(* node limit returns the incumbent with Feasible status *)
let test_bb_node_limit_feasible () =
  let m = Model.create () in
  let vars = List.init 14 (fun i -> Model.bool_var m (Printf.sprintf "v%d" i)) in
  let open Lin_expr in
  List.iteri
    (fun i v ->
      Model.le m
        (add (term v) (term (List.nth vars ((i + 3) mod 14))))
        (constant 1.))
    vars;
  Model.set_objective m Model.Maximize (sum (List.map term vars));
  let warm = Array.make (Model.num_vars m) 0. in
  let options = { Branch_bound.default_options with Branch_bound.node_limit = 1 } in
  let sol = Branch_bound.solve ~options ~warm_start:warm m in
  Alcotest.(check bool) "feasible or optimal under limit" true
    (match sol.Branch_bound.status with
    | Branch_bound.Feasible | Branch_bound.Optimal -> true
    | _ -> false)

(* stats accumulate across solves *)
let test_stats_accumulate () =
  let stats = Stats.create () in
  let mk () =
    let m = Model.create () in
    let a = Model.bool_var m "a" in
    Model.set_objective m Model.Maximize (Lin_expr.term a);
    m
  in
  ignore (Solver.solve ~stats (mk ()));
  ignore (Solver.solve ~stats (mk ()));
  Alcotest.(check int) "two ilps" 2 stats.Stats.ilps;
  Alcotest.(check int) "two vars" 2 stats.Stats.vars;
  let copy = Stats.copy stats in
  Stats.reset stats;
  Alcotest.(check int) "reset" 0 stats.Stats.ilps;
  Alcotest.(check int) "copy unaffected" 2 copy.Stats.ilps;
  Stats.merge ~into:stats copy;
  Alcotest.(check int) "merged" 2 stats.Stats.ilps

(* general integers beyond 0/1 *)
let test_bb_general_int_domain () =
  let m = Model.create () in
  let k = Model.int_var ~lb:2. ~ub:9. m "k" in
  let open Lin_expr in
  (* maximize k with 3k <= 22 -> k = 7 *)
  Model.le m (term ~coef:3. k) (constant 22.);
  Model.set_objective m Model.Maximize (term k);
  let sol = Branch_bound.solve m in
  check_feq "k" 7. sol.Branch_bound.obj

let suite =
  suite
  @ [
      Alcotest.test_case "simplex equalities only" `Quick
        test_simplex_equalities_only;
      Alcotest.test_case "simplex redundant rows" `Quick
        test_simplex_redundant_rows;
      Alcotest.test_case "bb warm start improved" `Quick
        test_bb_warm_start_improved;
      Alcotest.test_case "bb infeasible warm start" `Quick
        test_bb_warm_start_infeasible_ignored;
      Alcotest.test_case "bb node limit" `Quick test_bb_node_limit_feasible;
      Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
      Alcotest.test_case "bb general int domain" `Quick
        test_bb_general_int_domain;
    ]
