(* Tests for the serve subsystem: frame codec round-trip and totality on
   adversarial input (qcheck), request/response JSON round-trip, the
   response-code contract, the bounded fair admission queue and its
   drain valve, latency percentiles, and an end-to-end daemon test —
   concurrent clients over a real Unix socket get responses bit-identical
   to a direct library run, then a drain request shuts the server down
   cleanly. *)

module P = Serve.Protocol
module J = Trace_json

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(* Feed [wire] to a fresh decoder in chunks of [sizes] (cycled) and pop
   every completed frame. *)
let decode_chunked sizes wire =
  let d = P.decoder () in
  let out = ref [] in
  let err = ref None in
  let n = String.length wire in
  let pos = ref 0 in
  let k = ref 0 in
  while !pos < n && !err = None do
    let sz = List.nth sizes (!k mod List.length sizes) in
    incr k;
    let len = min sz (n - !pos) in
    P.feed d (String.sub wire !pos len);
    pos := !pos + len;
    let rec drain () =
      match P.next d with
      | `Frame s ->
          out := s :: !out;
          drain ()
      | `Awaiting -> ()
      | `Error m -> err := Some m
    in
    drain ()
  done;
  (List.rev !out, !err)

let test_frame_roundtrip_qcheck () =
  let open QCheck in
  let gen =
    Gen.(
      pair
        (list_size (int_range 1 8) (string_size ~gen:char (int_bound 300)))
        (list_size (int_range 1 5) (int_range 1 64)))
  in
  let prop (payloads, sizes) =
    let wire = String.concat "" (List.map P.frame payloads) in
    let got, err = decode_chunked sizes wire in
    err = None && got = payloads
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300
       ~name:"framing round-trips through arbitrary chunking" (make gen) prop)

let test_decoder_truncated () =
  (* a partial header, then a partial payload: always [`Awaiting], and
     the frame completes once the last byte arrives *)
  let wire = P.frame "hello" in
  let d = P.decoder () in
  P.feed d (String.sub wire 0 2);
  Alcotest.(check bool) "partial header awaits" true (P.next d = `Awaiting);
  P.feed d (String.sub wire 2 (String.length wire - 3));
  Alcotest.(check bool) "partial payload awaits" true (P.next d = `Awaiting);
  P.feed d (String.sub wire (String.length wire - 1) 1);
  (match P.next d with
  | `Frame s -> Alcotest.(check string) "payload" "hello" s
  | _ -> Alcotest.fail "expected the completed frame");
  Alcotest.(check bool) "then empty" true (P.next d = `Awaiting)

let test_decoder_garbage_length () =
  (* an HTTP request line: 'GET ' = 0x47455420, over max_frame *)
  let d = P.decoder () in
  P.feed d "GET / HTTP/1.1\r\n";
  (match P.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "oversized length prefix must be a framing error");
  (* sticky: even a valid frame afterwards cannot resynchronize *)
  P.feed d (P.frame "x");
  match P.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "decoder errors must be sticky"

let test_decoder_negative_length () =
  let d = P.decoder () in
  P.feed d "\xff\xff\xff\xfexx";
  match P.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "negative length prefix must be a framing error"

let test_frame_oversized_payload () =
  match P.frame (String.make (P.max_frame + 1) 'a') with
  | _ -> Alcotest.fail "framing an oversized payload must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Request / response JSON                                             *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip_qcheck () =
  let open QCheck in
  let gen =
    Gen.(
      let* op =
        oneofl P.[ Parallelize; Execute; Status; Health; Drain; Stats; Dump ]
      in
      let* id = string_size ~gen:printable (int_bound 12) in
      let* target = string_size ~gen:printable (int_bound 20) in
      let* fault_plan = oneofl [ ""; "serve.exec@1=raise"; "seed:3" ] in
      (* quarter-second grid: survives the emitter's %.6g numbers *)
      let* q = int_bound 400 in
      return
        (P.request ~id ~target ~fault_plan
           ~deadline_s:(float_of_int q /. 4.) op))
  in
  let prop (r : P.request) =
    match P.parse_request (J.to_string (P.request_json r)) with
    | Ok r' -> r = r'
    | Error _ -> false
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"request JSON round-trips" (make gen)
       prop)

let test_response_roundtrip () =
  List.iter
    (fun status ->
      let r =
        P.response ~id:"req-7" status ~message:"m"
          ~body:[ ("speedup", J.Num 3.25); ("digest", J.Str "abc") ]
      in
      match P.parse_response (J.to_string (P.response_json r)) with
      | Ok r' ->
          if r <> r' then
            Alcotest.failf "response round-trip changed %s"
              (P.status_name status)
      | Error m -> Alcotest.failf "response parse failed: %s" m)
    P.all_statuses

let test_parse_request_rejects_garbage () =
  List.iter
    (fun s ->
      match P.parse_request s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse_request accepted %S" s)
    [
      "";
      "not json";
      "[1,2]";
      {|{"schema":"mpsoc-par/serve/v1"}|};
      {|{"schema":"mpsoc-par/serve/v1","op":"frobnicate"}|};
      {|{"schema":"bogus/v9","op":"status"}|};
    ]

let test_status_code_contract () =
  let expect =
    [
      (P.Ok_, 0);
      (P.Degraded, 2);
      (P.Invalid, 3);
      (P.Resource_limit, 3);
      (P.Overloaded, 3);
      (P.Draining, 3);
      (P.Timeout, 4);
      (P.Deadlock, 4);
      (P.Fault, 1);
      (P.Internal, 1);
    ]
  in
  List.iter
    (fun (s, code) ->
      Alcotest.(check int) (P.status_name s) code (P.status_code s))
    expect;
  (* every status is covered by the expectation table *)
  Alcotest.(check int)
    "all statuses covered" (List.length P.all_statuses) (List.length expect);
  (* the protocol mirror of the CLI contract: a typed error's response
     code equals its CLI exit code *)
  List.iter
    (fun kind ->
      let e = Mpsoc_error.make ~phase:Cli ~kind "boom" in
      Alcotest.(check int) "error code mirror"
        (Mpsoc_error.exit_code e)
        (P.status_code (P.status_of_error e)))
    Mpsoc_error.
      [
        Invalid_input;
        Resource_limit;
        Timeout;
        Deadlock { waiting_tasks = [ "t0" ] };
        Fault_injected "point";
        Internal;
      ]

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let test_admission_fairness () =
  let q = Serve.Admission.create ~max:16 in
  (* client 1 floods first, then client 2 adds two jobs; round-robin
     must interleave them instead of draining client 1 first *)
  List.iter
    (fun j ->
      match Serve.Admission.submit q ~client:1 j with
      | Serve.Admission.Accepted -> ()
      | _ -> Alcotest.fail "submit under capacity must be accepted")
    [ "a1"; "a2"; "a3"; "a4" ];
  List.iter
    (fun j ->
      match Serve.Admission.submit q ~client:2 j with
      | Serve.Admission.Accepted -> ()
      | _ -> Alcotest.fail "submit under capacity must be accepted")
    [ "b1"; "b2" ];
  let order = List.init 6 (fun _ -> Option.get (Serve.Admission.take q)) in
  Alcotest.(check (list string))
    "round-robin interleave"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "a4" ]
    order

let test_admission_overload () =
  let q = Serve.Admission.create ~max:2 in
  ignore (Serve.Admission.submit q ~client:1 "x");
  ignore (Serve.Admission.submit q ~client:2 "y");
  (match Serve.Admission.submit q ~client:3 "z" with
  | Serve.Admission.Overloaded -> ()
  | _ -> Alcotest.fail "submit over capacity must be overloaded");
  (* overload is a rejection, not corruption: the queue still serves *)
  Alcotest.(check int) "depth" 2 (Serve.Admission.depth q);
  let c = Serve.Admission.counters q in
  Alcotest.(check int) "accepted" 2 c.Serve.Admission.accepted;
  Alcotest.(check int) "rejected" 1 c.Serve.Admission.rej_overloaded

let test_admission_drain () =
  let q = Serve.Admission.create ~max:8 in
  ignore (Serve.Admission.submit q ~client:1 "x");
  Serve.Admission.drain q;
  (match Serve.Admission.submit q ~client:1 "y" with
  | Serve.Admission.Draining -> ()
  | _ -> Alcotest.fail "submit while draining must be rejected");
  (* admitted work still drains, then take signals completion *)
  Alcotest.(check (option string)) "queued job" (Some "x")
    (Serve.Admission.take q);
  Alcotest.(check (option string)) "drained" None (Serve.Admission.take q);
  Alcotest.(check (option string)) "stays drained" None (Serve.Admission.take q)

let test_admission_take_blocks () =
  (* take blocks until a producer submits from another domain *)
  let q = Serve.Admission.create ~max:4 in
  let producer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        ignore (Serve.Admission.submit q ~client:9 "late"))
  in
  Alcotest.(check (option string)) "blocking take" (Some "late")
    (Serve.Admission.take q);
  Domain.join producer

(* ------------------------------------------------------------------ *)
(* Latency percentiles                                                 *)
(* ------------------------------------------------------------------ *)

let test_latency_percentiles () =
  let l = Serve.Latency.create () in
  (* 1..100 ms, shuffled deterministically *)
  List.iter
    (fun i -> Serve.Latency.record l (float_of_int ((i * 37 mod 100) + 1) /. 1e3))
    (List.init 100 Fun.id);
  let s = Serve.Latency.summarize l in
  Alcotest.(check int) "count" 100 s.Serve.Latency.count;
  (* nearest-rank on 1..100: pXX = XX *)
  Alcotest.(check (float 1e-6)) "p50" 50. s.Serve.Latency.p50_ms;
  Alcotest.(check (float 1e-6)) "p90" 90. s.Serve.Latency.p90_ms;
  Alcotest.(check (float 1e-6)) "p99" 99. s.Serve.Latency.p99_ms;
  Alcotest.(check (float 1e-6)) "max" 100. s.Serve.Latency.max_ms;
  Alcotest.(check (float 1e-6)) "mean" 50.5 s.Serve.Latency.mean_ms

let test_latency_empty () =
  let s = Serve.Latency.summarize (Serve.Latency.create ()) in
  Alcotest.(check int) "count" 0 s.Serve.Latency.count;
  Alcotest.(check (float 1e-9)) "p99" 0. s.Serve.Latency.p99_ms

(* ------------------------------------------------------------------ *)
(* End-to-end: daemon on a real socket, concurrent clients             *)
(* ------------------------------------------------------------------ *)

(* small but parallelizable: two independent DOALL loops *)
let e2e_src =
  {|
float a[256]; float b[256];
int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) { a[i] = sin(i * 0.01) * 2.0; }
  for (i = 0; i < 256; i = i + 1) { b[i] = cos(i * 0.02) + 1.0; }
  return (int) (a[5] + b[7]);
}
|}

let with_tmpdir f =
  let dir = Filename.temp_file "serve-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then (
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p)
        else Sys.remove p
      in
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let rpc sock (req : P.request) : P.response =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock);
      P.write_request fd req;
      match P.read_response fd with
      | `Response r -> r
      | `Eof -> Alcotest.fail "server closed the connection"
      | `Error m -> Alcotest.failf "transport error: %s" m)

let connect_retry sock =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n = 0 then Alcotest.fail "server socket never came up";
        Unix.sleepf 0.05;
        go (n - 1)
  in
  go 100

let body_str name (r : P.response) =
  match List.assoc_opt name r.P.body with
  | Some (J.Str s) -> s
  | _ -> Alcotest.failf "response body misses string field %S" name

let body_num name (r : P.response) =
  match List.assoc_opt name r.P.body with
  | Some (J.Num n) -> n
  | _ -> Alcotest.failf "response body misses numeric field %S" name

let test_daemon_end_to_end () =
  with_tmpdir @@ fun dir ->
  let src_file = Filename.concat dir "prog.c" in
  let oc = open_out src_file in
  output_string oc e2e_src;
  close_out oc;
  let sock = Filename.concat dir "s.sock" in
  let cfg = { Parcore.Config.fast with Parcore.Config.jobs = 2 } in
  let server =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          {
            Serve.Daemon.default_config with
            Serve.Daemon.socket_path = sock;
            cfg;
          })
  in
  connect_retry sock;
  (* two concurrent clients ask for the same target *)
  let ask () =
    rpc sock
      (P.request ~id:"c" ~target:src_file ~platform:"platform-a-accel"
         P.Parallelize)
  in
  let other = Domain.spawn ask in
  let r1 = ask () in
  let r2 = Domain.join other in
  List.iter
    (fun (r : P.response) ->
      match P.status_code r.P.status with
      | 0 | 2 -> ()
      | _ ->
          Alcotest.failf "request failed: %s %s" (P.status_name r.P.status)
            r.P.message)
    [ r1; r2 ];
  (* both responses carry the same digest, and it is bit-identical to a
     direct single-shot library run with the same config *)
  let direct =
    Parcore.Parallelize.run ~cfg ~approach:Parcore.Parallelize.Heterogeneous
      ~platform:Platform.Presets.platform_a_accel e2e_src
  in
  let expect = Parcore.Algorithm.digest direct.Parcore.Parallelize.algo in
  Alcotest.(check string) "client 1 digest" expect (body_str "digest" r1);
  Alcotest.(check string) "client 2 digest" expect (body_str "digest" r2);
  (* warm path: a repeat request is answered from the hot memo *)
  let r3 = ask () in
  Alcotest.(check (float 0.)) "warm run solves no ILPs" 0. (body_num "ilps" r3);
  Alcotest.(check bool) "warm run hit the memo" true (body_num "memo_hits" r3 > 0.);
  (* status reflects the served jobs *)
  let st = rpc sock (P.request ~id:"st" P.Status) in
  (match List.assoc_opt "server" st.P.body with
  | Some (J.Obj fields) -> (
      match List.assoc_opt "completed" fields with
      | Some (J.Num n) ->
          Alcotest.(check bool) "completed >= 3" true (n >= 3.)
      | _ -> Alcotest.fail "status misses completed")
  | _ -> Alcotest.fail "status misses server section");
  (* graceful drain via the protocol *)
  let dr = rpc sock (P.request ~id:"d" P.Drain) in
  Alcotest.(check string) "drain acknowledged" "ok" (P.status_name dr.P.status);
  let code = Domain.join server in
  Alcotest.(check int) "clean drain exit" 0 code;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists sock)

let spawn_daemon ?(cfg = Parcore.Config.fast) ?(executors = 2)
    ?(restart_budget = 8) ?(wedge_grace_s = 0.2) sock =
  Domain.spawn (fun () ->
      Serve.Daemon.run
        {
          Serve.Daemon.default_config with
          Serve.Daemon.socket_path = sock;
          executors;
          restart_budget;
          wedge_grace_s;
          cfg;
        })

let body_bool name (r : P.response) =
  match List.assoc_opt name r.P.body with
  | Some (J.Bool b) -> b
  | _ -> Alcotest.failf "response body misses boolean field %S" name

(* Poll [health] until [pred] holds: restarts happen on the monitor's
   schedule (backoff window + event-loop tick), not synchronously with
   the crash answer. *)
let wait_health sock pred =
  let rec go n =
    let h = rpc sock (P.request ~id:"h" P.Health) in
    if pred h then h
    else if n = 0 then Alcotest.fail "health predicate never satisfied"
    else (
      Unix.sleepf 0.1;
      go (n - 1))
  in
  go 100

let write_src dir =
  let src_file = Filename.concat dir "prog.c" in
  let oc = open_out src_file in
  output_string oc e2e_src;
  close_out oc;
  src_file

let direct_digest cfg =
  let direct =
    Parcore.Parallelize.run ~cfg ~approach:Parcore.Parallelize.Heterogeneous
      ~platform:Platform.Presets.platform_a_accel e2e_src
  in
  Parcore.Algorithm.digest direct.Parcore.Parallelize.algo

let test_daemon_health () =
  with_tmpdir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  let server = spawn_daemon sock in
  connect_retry sock;
  let h = rpc sock (P.request ~id:"h" P.Health) in
  Alcotest.(check string) "health ok" "ok" (P.status_name h.P.status);
  Alcotest.(check bool) "live" true (body_bool "live" h);
  Alcotest.(check bool) "ready" true (body_bool "ready" h);
  Alcotest.(check string) "accepting" "accepting" (body_str "state" h);
  Alcotest.(check (float 0.)) "2 active workers" 2. (body_num "active_workers" h);
  Alcotest.(check (float 0.)) "no restarts yet" 0. (body_num "restarts" h);
  Alcotest.(check bool) "budget intact" false (body_bool "exhausted" h);
  (match List.assoc_opt "executors" h.P.body with
  | Some (J.List ws) -> Alcotest.(check int) "per-worker entries" 2 (List.length ws)
  | _ -> Alcotest.fail "health misses executors list");
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit" 0 (Domain.join server)

let test_executor_crash_restart () =
  with_tmpdir @@ fun dir ->
  let src_file = write_src dir in
  let sock = Filename.concat dir "s.sock" in
  let server = spawn_daemon sock in
  connect_retry sock;
  (* the injected raise at the [serve.exec] probe kills the executor
     worker mid-request; the supervisor must answer the poisoned request
     with a typed [internal], not let the daemon die *)
  let bad =
    rpc sock
      (P.request ~id:"boom" ~target:src_file ~platform:"platform-a-accel"
         ~fault_plan:"serve.exec@1=raise" P.Parallelize)
  in
  Alcotest.(check string) "typed crash answer" "internal"
    (P.status_name bad.P.status);
  (* the daemon survived: a clean request still gets the exact direct-run
     answer *)
  let good =
    rpc sock
      (P.request ~id:"ok" ~target:src_file ~platform:"platform-a-accel"
         P.Parallelize)
  in
  Alcotest.(check bool)
    ("clean request succeeds, got " ^ P.status_name good.P.status)
    true
    (match good.P.status with P.Ok_ | P.Degraded -> true | _ -> false);
  Alcotest.(check string) "digest identical to direct run"
    (direct_digest Parcore.Config.fast)
    (body_str "digest" good);
  (* the crash was observed and the worker replaced *)
  let h = wait_health sock (fun h -> body_num "restarts" h >= 1.) in
  Alcotest.(check bool) "crash counted" true (body_num "crashes" h >= 1.);
  Alcotest.(check bool) "ready again" true (body_bool "ready" h);
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit after crash+restart" 0 (Domain.join server)

let test_executor_wedge_isolated () =
  with_tmpdir @@ fun dir ->
  let src_file = write_src dir in
  let sock = Filename.concat dir "s.sock" in
  let server = spawn_daemon ~wedge_grace_s:0.2 sock in
  connect_retry sock;
  (* the wedged request sleeps 3 s inside the probe with a 0.3 s
     deadline; the monitor must abandon the worker and answer [timeout]
     long before the sleep ends *)
  let t0 = Unix.gettimeofday () in
  let wedged =
    Domain.spawn (fun () ->
        rpc sock
          (P.request ~id:"stuck" ~target:src_file ~platform:"platform-a-accel"
             ~deadline_s:0.3 ~fault_plan:"serve.exec@1=delay:3" P.Parallelize))
  in
  (* a concurrent clean request on the other worker is unaffected *)
  Unix.sleepf 0.05;
  let good =
    rpc sock
      (P.request ~id:"ok" ~target:src_file ~platform:"platform-a-accel"
         P.Parallelize)
  in
  Alcotest.(check bool)
    ("concurrent clean request succeeds, got " ^ P.status_name good.P.status)
    true
    (match good.P.status with P.Ok_ | P.Degraded -> true | _ -> false);
  let r = Domain.join wedged in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "wedged request times out" "timeout"
    (P.status_name r.P.status);
  (* answered by the monitor's abandonment, not by the sleep finishing *)
  Alcotest.(check bool)
    (Printf.sprintf "abandoned before the wedge cleared (%.2fs)" dt)
    true (dt < 2.9);
  let h = wait_health sock (fun h -> body_num "wedges" h >= 1.) in
  Alcotest.(check bool) "restart counted" true (body_num "restarts" h >= 1.);
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit after wedge" 0 (Domain.join server)

let test_chaos_under_serve () =
  with_tmpdir @@ fun dir ->
  let src_file = write_src dir in
  let sock = Filename.concat dir "s.sock" in
  let server = spawn_daemon ~restart_budget:64 sock in
  connect_retry sock;
  (* mixed load: every 3rd request arms a fault plan (cycling over worker
     crashes, solver-level and runtime-level probes); the daemon must
     answer every request, keep clean answers bit-identical to a direct
     run, and drain cleanly afterwards *)
  let lg =
    {
      Serve.Loadgen.default_config with
      Serve.Loadgen.socket_path = sock;
      targets = [ src_file ];
      platform = "platform-a-accel";
      qps = 0.;
      concurrency = 3;
      requests = 36;
      fault_specs =
        [
          "serve.exec@1=raise";
          "simplex.pivot@1=raise";
          "pool.spawn@1=raise";
          "channel.recv@2=delay:0.01";
        ];
      fault_every = 3;
      report_path = None;
    }
  in
  let r = Serve.Loadgen.run_result lg in
  Alcotest.(check int) "every request answered" 36 r.Serve.Loadgen.completed;
  Alcotest.(check int) "no transport errors" 0 r.Serve.Loadgen.transport_errors;
  Alcotest.(check int) "12 requests faulted" 12 r.Serve.Loadgen.faulted;
  Alcotest.(check bool) "clean digests consistent" true
    r.Serve.Loadgen.digests_consistent;
  (match r.Serve.Loadgen.digests with
  | [ (_, [ d ]) ] ->
      Alcotest.(check string) "clean digest identical to direct run"
        (direct_digest Parcore.Config.fast) d
  | _ -> Alcotest.fail "expected one target with one distinct digest");
  (* worker crashes were injected, so the supervisor must have restarted *)
  let h = wait_health sock (fun h -> body_num "restarts" h >= 1.) in
  Alcotest.(check bool) "still ready" true (body_bool "ready" h);
  Alcotest.(check bool) "budget not exhausted" false (body_bool "exhausted" h);
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit after chaos" 0 (Domain.join server)

let test_stale_and_live_socket () =
  with_tmpdir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  (* a stale socket file left behind by a crashed daemon: bound but with
     no listener, so a probe connect fails with ECONNREFUSED *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists sock);
  let server = spawn_daemon sock in
  connect_retry sock;
  (* the stale file was replaced and the daemon serves on it; a second
     daemon on the same path must refuse rather than clobber it *)
  (match
     Serve.Daemon.run
       {
         Serve.Daemon.default_config with
         Serve.Daemon.socket_path = sock;
         cfg = Parcore.Config.fast;
       }
   with
  | code -> Alcotest.failf "second daemon ran (exit %d) on a live socket" code
  | exception Mpsoc_error.Error e ->
      Alcotest.(check bool) "typed invalid-input refusal" true
        (e.Mpsoc_error.kind = Mpsoc_error.Invalid_input);
      Alcotest.(check int) "maps to exit 3" 3 (Mpsoc_error.exit_code e));
  (* refusing must not have unlinked the live daemon's socket *)
  let h = rpc sock (P.request ~id:"h" P.Health) in
  Alcotest.(check bool) "first daemon still live" true (body_bool "live" h);
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit" 0 (Domain.join server);
  Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists sock)

(* Satellite: the drain valve races with concurrent producers.  Property:
   every accepted job is taken exactly once, and nothing is admitted
   after [drain] returns — over many randomized interleavings. *)
let test_admission_drain_race () =
  for round = 1 to 25 do
    let q = Serve.Admission.create ~max:1024 in
    let nprod = 1 + (round mod 4) in
    let per = 50 in
    let accepted = Atomic.make 0 in
    let producers =
      List.init nprod (fun p ->
          Domain.spawn (fun () ->
              for j = 0 to per - 1 do
                (match
                   Serve.Admission.submit q ~client:p
                     (Printf.sprintf "%d-%d" p j)
                 with
                | Serve.Admission.Accepted -> Atomic.incr accepted
                | Serve.Admission.Draining -> ()
                | Serve.Admission.Overloaded ->
                    Alcotest.fail "overloaded under capacity");
                if j land 7 = 0 then Domain.cpu_relax ()
              done))
    in
    let consumer =
      Domain.spawn (fun () ->
          let rec go n =
            match Serve.Admission.take q with
            | Some _ -> go (n + 1)
            | None -> n
          in
          go 0)
    in
    (* close the valve at a round-dependent point in the race *)
    Unix.sleepf (0.0004 *. float_of_int (round mod 7));
    Serve.Admission.drain q;
    List.iter Domain.join producers;
    (match Serve.Admission.submit q ~client:99 "late" with
    | Serve.Admission.Draining -> ()
    | Serve.Admission.Accepted -> Alcotest.fail "admitted after drain"
    | Serve.Admission.Overloaded -> Alcotest.fail "wrong rejection after drain");
    let taken = Domain.join consumer in
    let acc = Atomic.get accepted in
    if taken <> acc then
      Alcotest.failf "round %d lost jobs: accepted %d, took %d" round acc taken
  done

(* ------------------------------------------------------------------ *)
(* Observability: request tags, server timing, stats/dump, flight      *)
(* ------------------------------------------------------------------ *)

let body_obj name (r : P.response) =
  match List.assoc_opt name r.P.body with
  | Some (J.Obj fields) -> fields
  | _ -> Alcotest.failf "response body misses object field %S" name

(* Traced daemon, two concurrent clients: every span a request's solve
   emits carries that request's server-assigned id as a ("req", tag)
   argument, across >= 2 domains (two executor workers, each with its
   own taskpool); responses stay bit-identical to a direct library run;
   and the inline stats/dump ops answer while a solve is in flight. *)
let test_request_tracing_end_to_end () =
  with_tmpdir @@ fun dir ->
  let src_file = write_src dir in
  let sock = Filename.concat dir "s.sock" in
  let cfg = { Parcore.Config.fast with Parcore.Config.jobs = 2 } in
  (* the recorder is global and the daemon runs in-process: arm it here
     (the daemon's own config keeps tracing off, so it will not stop it) *)
  Trace.start ();
  let collected =
    Fun.protect
      ~finally:(fun () -> if Trace.enabled () then ignore (Trace.stop ()))
      (fun () ->
        let server = spawn_daemon ~cfg sock in
        connect_retry sock;
        (* client a's solve is held at the serve.exec probe for 0.5 s,
           pinning one executor worker; client b then runs on the other *)
        let slow =
          Domain.spawn (fun () ->
              rpc sock
                (P.request ~id:"a" ~target:src_file
                   ~platform:"platform-a-accel"
                   ~fault_plan:"serve.exec@1=delay:0.5" P.Parallelize))
        in
        Unix.sleepf 0.15;
        (* the event loop answers stats and dump inline even though a
           worker is mid-"solve" *)
        let st = rpc sock (P.request ~id:"s" P.Stats) in
        Alcotest.(check string) "stats answers in flight" "ok"
          (P.status_name st.P.status);
        Alcotest.(check string) "stats schema" "mpsoc-par/stats/v1"
          (body_str "stats_schema" st);
        let du = rpc sock (P.request ~id:"du" P.Dump) in
        Alcotest.(check string) "dump answers in flight" "ok"
          (P.status_name du.P.status);
        Alcotest.(check bool) "dump wrote admit events" true
          (body_num "events" du >= 1.);
        Alcotest.(check bool) "dump file exists" true
          (Sys.file_exists (body_str "path" du));
        let rb =
          rpc sock
            (P.request ~id:"b" ~target:src_file ~platform:"platform-a-accel"
               P.Parallelize)
        in
        let ra = Domain.join slow in
        List.iter
          (fun (r : P.response) ->
            match P.status_code r.P.status with
            | 0 | 2 -> ()
            | _ ->
                Alcotest.failf "request failed: %s %s"
                  (P.status_name r.P.status) r.P.message)
          [ ra; rb ];
        Alcotest.(check string) "clean digest identical to direct run"
          (direct_digest cfg) (body_str "digest" rb);
        (* server-assigned ids embed the client correlation ids *)
        let rid_a = body_str "request_id" ra
        and rid_b = body_str "request_id" rb in
        Alcotest.(check bool) "distinct request ids" true (rid_a <> rid_b);
        let timing = body_obj "server_timing" ra in
        List.iter
          (fun f ->
            match List.assoc_opt f timing with
            | Some (J.Num v) ->
                Alcotest.(check bool) (f ^ " >= 0") true (v >= 0.)
            | _ -> Alcotest.failf "server_timing misses %S" f)
          [ "queue_wait_s"; "solve_s"; "serialize_s" ];
        (* the injected 0.5 s delay is server solve time, not queueing *)
        (match List.assoc_opt "solve_s" timing with
        | Some (J.Num v) ->
            Alcotest.(check bool) "delay counted as solve time" true (v >= 0.5)
        | _ -> Alcotest.fail "server_timing misses solve_s");
        (* post-completion stats: the sliding windows saw both solves *)
        let st2 = rpc sock (P.request ~id:"s2" P.Stats) in
        let counters = body_obj "counters" st2 in
        (match List.assoc_opt "completed" counters with
        | Some (J.Num n) ->
            Alcotest.(check bool) "stats counted completions" true (n >= 2.)
        | _ -> Alcotest.fail "stats misses counters.completed");
        (match
           List.assoc_opt "all" (body_obj "latency" st2)
           |> Fun.flip Option.bind (J.member "total")
           |> Fun.flip Option.bind (J.member "count")
         with
        | Some (J.Num n) ->
            Alcotest.(check bool) "total window count" true (n >= 2.)
        | _ -> Alcotest.fail "stats misses latency.all.total.count");
        ignore (rpc sock (P.request ~id:"d" P.Drain));
        Alcotest.(check int) "clean exit" 0 (Domain.join server);
        let c = match Trace.stop () with Some c -> c | None -> Alcotest.fail "recorder was armed" in
        (rid_a, rid_b, c))
  in
  let rid_a, rid_b, c = collected in
  let tagged_spans rid =
    List.filter
      (fun (e : Trace.event) ->
        (e.Trace.ph = Trace.B || e.Trace.ph = Trace.E || e.Trace.ph = Trace.X)
        && List.assoc_opt "req" e.Trace.args = Some (Trace.Str rid))
      c.Trace.events
  in
  let sa = tagged_spans rid_a and sb = tagged_spans rid_b in
  Alcotest.(check bool) "request a's solve emitted tagged spans" true (sa <> []);
  Alcotest.(check bool) "request b's solve emitted tagged spans" true (sb <> []);
  let doms evs =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.Trace.dom) evs)
  in
  Alcotest.(check bool) "tagged spans cross >= 2 domains" true
    (List.length (doms (sa @ sb)) >= 2);
  (* no span carries the wrong request's tag: the two executor domains
     never mix tags (pool workers are per-executor) *)
  List.iter
    (fun (e : Trace.event) ->
      if List.exists (fun (e' : Trace.event) -> e'.Trace.dom = e.Trace.dom) sb
      then
        Alcotest.failf "domain %d carries both request tags" e.Trace.dom)
    sa

(* Flight recorder with tracing disarmed: an injected executor crash
   dumps the ring as JSONL, and the post-restart dump holds both the
   crash and the restart events. *)
let test_flight_recorder_on_crash () =
  with_tmpdir @@ fun dir ->
  let src_file = write_src dir in
  let sock = Filename.concat dir "s.sock" in
  Alcotest.(check bool) "tracing disarmed" false (Trace.enabled ());
  let server = spawn_daemon sock in
  connect_retry sock;
  let bad =
    rpc sock
      (P.request ~id:"boom" ~target:src_file ~platform:"platform-a-accel"
         ~fault_plan:"serve.exec@1=raise" P.Parallelize)
  in
  Alcotest.(check string) "typed crash answer" "internal"
    (P.status_name bad.P.status);
  (* the restart (monitor schedule) re-dumps the ring *)
  ignore (wait_health sock (fun h -> body_num "restarts" h >= 1.));
  let flight = sock ^ ".flight.jsonl" in
  Alcotest.(check bool) "flight file written" true (Sys.file_exists flight);
  let read_kinds () =
    let ic = open_in flight in
    let kinds = ref [] in
    (try
       while true do
         let line = input_line ic in
         match J.member "kind" (J.parse line) with
         | Some (J.Str k) -> kinds := k :: !kinds
         | _ -> Alcotest.fail "flight line without kind"
       done
     with End_of_file -> close_in ic);
    List.rev !kinds
  in
  let rec wait_restart_dump n =
    if List.mem "executor.restart" (read_kinds ()) then ()
    else if n = 0 then Alcotest.fail "restart never reached the flight dump"
    else (
      Unix.sleepf 0.1;
      wait_restart_dump (n - 1))
  in
  wait_restart_dump 100;
  let kinds = read_kinds () in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " recorded") true (List.mem k kinds))
    [ "admit"; "start"; "executor.crash"; "executor.restart"; "complete" ];
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit" 0 (Domain.join server)

(* Satellite: queue-expired and watchdog timeouts are split into two
   counters, visible in both the status server section and stats. *)
let test_timeout_cause_split () =
  with_tmpdir @@ fun dir ->
  let src_file = write_src dir in
  let sock = Filename.concat dir "s.sock" in
  (* one executor; a delayed job pins it while a second job's deadline
     expires in the queue *)
  let server = spawn_daemon ~executors:1 ~wedge_grace_s:5. sock in
  connect_retry sock;
  let slow =
    Domain.spawn (fun () ->
        rpc sock
          (P.request ~id:"slow" ~target:src_file ~platform:"platform-a-accel"
             ~fault_plan:"serve.exec@1=delay:0.6" P.Parallelize))
  in
  Unix.sleepf 0.15;
  let expired =
    rpc sock
      (P.request ~id:"late" ~target:src_file ~platform:"platform-a-accel"
         ~deadline_s:0.1 P.Parallelize)
  in
  Alcotest.(check string) "queued request timed out" "timeout"
    (P.status_name expired.P.status);
  (match List.assoc_opt "timeout_cause" expired.P.body with
  | Some (J.Str c) -> Alcotest.(check string) "cause queue" "queue" c
  | _ -> Alcotest.fail "timeout response misses timeout_cause");
  ignore (Domain.join slow);
  let st = rpc sock (P.request ~id:"s" P.Stats) in
  let counters = body_obj "counters" st in
  let cnt name =
    match List.assoc_opt name counters with
    | Some (J.Num n) -> int_of_float n
    | _ -> Alcotest.failf "stats misses counters.%s" name
  in
  Alcotest.(check int) "one queue timeout" 1 (cnt "timed_out_queue");
  Alcotest.(check int) "no solve timeouts" 0 (cnt "timed_out_solve");
  Alcotest.(check int) "total matches" 1 (cnt "timed_out");
  (* the same split in the status op's server section *)
  let status = rpc sock (P.request ~id:"st" P.Status) in
  (match List.assoc_opt "timed_out_queue" (body_obj "server" status) with
  | Some (J.Num n) -> Alcotest.(check int) "server section split" 1 (int_of_float n)
  | _ -> Alcotest.fail "server section misses timed_out_queue");
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit" 0 (Domain.join server)

let test_daemon_rejects_unknown_target () =
  with_tmpdir @@ fun dir ->
  let sock = Filename.concat dir "s.sock" in
  let server =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          {
            Serve.Daemon.default_config with
            Serve.Daemon.socket_path = sock;
            cfg = Parcore.Config.fast;
          })
  in
  connect_retry sock;
  let r = rpc sock (P.request ~id:"x" ~target:"no-such-benchmark" P.Parallelize) in
  Alcotest.(check string) "typed rejection" "invalid" (P.status_name r.P.status);
  (* the diagnostic lists the available benchmark names (satellite
     contract shared with the CLI's resolve_target) *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "message lists benchmarks" true
    (List.for_all (contains r.P.message) Benchsuite.Suite.names);
  ignore (rpc sock (P.request ~id:"d" P.Drain));
  Alcotest.(check int) "clean exit" 0 (Domain.join server)

let suite =
  [
    Alcotest.test_case "frame round-trip (qcheck)" `Quick
      test_frame_roundtrip_qcheck;
    Alcotest.test_case "decoder: truncated input awaits" `Quick
      test_decoder_truncated;
    Alcotest.test_case "decoder: garbage length is a sticky error" `Quick
      test_decoder_garbage_length;
    Alcotest.test_case "decoder: negative length is an error" `Quick
      test_decoder_negative_length;
    Alcotest.test_case "frame: oversized payload raises" `Quick
      test_frame_oversized_payload;
    Alcotest.test_case "request JSON round-trip (qcheck)" `Quick
      test_request_roundtrip_qcheck;
    Alcotest.test_case "response JSON round-trip (all statuses)" `Quick
      test_response_roundtrip;
    Alcotest.test_case "parse_request rejects garbage" `Quick
      test_parse_request_rejects_garbage;
    Alcotest.test_case "response codes mirror the CLI exit contract" `Quick
      test_status_code_contract;
    Alcotest.test_case "admission: round-robin fairness" `Quick
      test_admission_fairness;
    Alcotest.test_case "admission: overload rejection" `Quick
      test_admission_overload;
    Alcotest.test_case "admission: drain valve" `Quick test_admission_drain;
    Alcotest.test_case "admission: take blocks until submit" `Quick
      test_admission_take_blocks;
    Alcotest.test_case "latency: nearest-rank percentiles" `Quick
      test_latency_percentiles;
    Alcotest.test_case "latency: empty summary" `Quick test_latency_empty;
    Alcotest.test_case "admission: drain never loses an admitted job" `Quick
      test_admission_drain_race;
    Alcotest.test_case "daemon: concurrent clients, bit-identical to direct run"
      `Slow test_daemon_end_to_end;
    Alcotest.test_case "daemon: typed rejection lists benchmarks" `Slow
      test_daemon_rejects_unknown_target;
    Alcotest.test_case "daemon: health op reports supervised workers" `Slow
      test_daemon_health;
    Alcotest.test_case "daemon: executor crash is answered and restarted" `Slow
      test_executor_crash_restart;
    Alcotest.test_case "daemon: wedged worker abandoned, peers unaffected" `Slow
      test_executor_wedge_isolated;
    Alcotest.test_case "daemon: chaos mix survives with clean digests" `Slow
      test_chaos_under_serve;
    Alcotest.test_case "daemon: refuses a live socket, replaces a stale one"
      `Slow test_stale_and_live_socket;
    Alcotest.test_case
      "daemon: spans tagged per request, stats/dump answer in flight" `Slow
      test_request_tracing_end_to_end;
    Alcotest.test_case "daemon: crash dumps the flight recorder (disarmed)"
      `Slow test_flight_recorder_on_crash;
    Alcotest.test_case "daemon: queue vs solve timeout causes split" `Slow
      test_timeout_cause_split;
  ]
