(** Observability-layer tests: qcheck properties of the sliding-window
    aggregator (bucket rotation, merge associativity, histogram
    percentiles vs the exact {!Serve.Latency} recorder) and the flight
    recorder's bounded ring + JSONL dump. *)

module J = Trace_json

let qtest = QCheck_alcotest.to_alcotest

(* anchor all window tests at a fixed wall time: epoch arithmetic only
   cares about differences, and a fixed base keeps runs reproducible *)
let base = 1_000_000.

(* ---- bucket rotation ------------------------------------------------ *)

(* One sample per second for [n] seconds on a 1 s x [span] ring: a
   window over the last [k] seconds must count exactly the samples whose
   second is among the last [min k span] (and not beyond [n]). *)
let prop_rotation =
  QCheck.Test.make ~name:"window counts exactly the covered buckets"
    ~count:200
    QCheck.(pair (int_range 1 30) (int_range 1 12))
    (fun (n, k) ->
      let span = 4 in
      let w = Obs_window.create ~bucket_s:1. ~buckets:span () in
      for i = 0 to n - 1 do
        Obs_window.record w ~now:(base +. float_of_int i) 0.001
      done;
      let now = base +. float_of_int (n - 1) in
      let s = Obs_window.summary w ~now ~last_s:(float_of_int k) in
      let expected = min n (min k span) in
      let total = (Obs_window.total w).Obs_window.count in
      s.Obs_window.count = expected && total = n)

(* Old epochs are lazily overwritten: after writing one sample far in
   the future, a full-span window anchored there sees only that sample
   while the cumulative total keeps everything. *)
let prop_overwrite =
  QCheck.Test.make ~name:"stale buckets do not leak into the window"
    ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let w = Obs_window.create ~bucket_s:1. ~buckets:4 () in
      for i = 0 to n - 1 do
        Obs_window.record w ~now:(base +. float_of_int i) 0.001
      done;
      let far = base +. float_of_int (n + 1000) in
      Obs_window.record w ~now:far 0.001;
      let s = Obs_window.summary w ~now:far ~last_s:4. in
      s.Obs_window.count = 1
      && (Obs_window.total w).Obs_window.count = n + 1)

(* ---- merge associativity -------------------------------------------- *)

let samples_gen =
  (* (second offset, latency seconds) pairs *)
  QCheck.(
    small_list (pair (int_range 0 20) (map (fun ms -> float_of_int ms /. 1e3) (int_range 1 8000))))

let fill samples =
  let w = Obs_window.create ~bucket_s:1. ~buckets:8 () in
  List.iter
    (fun (off, dt) -> Obs_window.record w ~now:(base +. float_of_int off) dt)
    samples;
  Obs_window.snapshot w

let summaries s =
  [
    Obs_window.snap_total s;
    Obs_window.snap_summary s ~last_s:1.;
    Obs_window.snap_summary s ~last_s:4.;
    Obs_window.snap_summary s ~last_s:100.;
  ]

(* Counts, maxes and histogram percentiles merge exactly; the mean sums
   floats in grouping order, so it is only associative up to rounding. *)
let summary_eq (a : Obs_window.summary) (b : Obs_window.summary) =
  a.Obs_window.count = b.Obs_window.count
  && a.Obs_window.max_ms = b.Obs_window.max_ms
  && a.Obs_window.p50_ms = b.Obs_window.p50_ms
  && a.Obs_window.p90_ms = b.Obs_window.p90_ms
  && a.Obs_window.p99_ms = b.Obs_window.p99_ms
  && Float.abs (a.Obs_window.mean_ms -. b.Obs_window.mean_ms)
     <= 1e-9 *. (1. +. Float.abs a.Obs_window.mean_ms)

let prop_merge_assoc =
  QCheck.Test.make ~name:"snapshot merge is associative" ~count:200
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let a = fill xs and b = fill ys and c = fill zs in
      let l = Obs_window.merge (Obs_window.merge a b) c in
      let r = Obs_window.merge a (Obs_window.merge b c) in
      List.for_all2 summary_eq (summaries l) (summaries r))

let prop_merge_comm =
  QCheck.Test.make ~name:"snapshot merge is commutative" ~count:200
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = fill xs and b = fill ys in
      List.for_all2 summary_eq
        (summaries (Obs_window.merge a b))
        (summaries (Obs_window.merge b a)))

(* ---- percentiles vs the exact recorder ------------------------------ *)

(* The window's histogram percentile must be the upper bound of the
   1-2-5 bucket containing the exact nearest-rank percentile that
   {!Serve.Latency} computes from the same samples (overflow bucket:
   the observed max). *)
let bucket_upper exact_ms ~max_ms =
  match
    List.find_opt (fun b -> exact_ms <= b) Obs_window.bucket_bounds_ms
  with
  | Some b -> b
  | None -> max_ms

let prop_percentiles_agree =
  QCheck.Test.make
    ~name:"histogram percentiles bracket the exact recorder" ~count:300
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (map (fun ms -> float_of_int ms /. 1e3) (int_range 1 8000)))
    (fun dts ->
      let lat = Serve.Latency.create () in
      let w = Obs_window.create () in
      List.iter
        (fun dt ->
          Serve.Latency.record lat dt;
          Obs_window.record w ~now:base dt)
        dts;
      let exact = Serve.Latency.summarize lat in
      let win = Obs_window.total w in
      let agree (e_ms, w_ms) =
        w_ms = bucket_upper e_ms ~max_ms:win.Obs_window.max_ms
      in
      win.Obs_window.count = exact.Serve.Latency.count
      && List.for_all agree
           [
             (exact.Serve.Latency.p50_ms, win.Obs_window.p50_ms);
             (exact.Serve.Latency.p90_ms, win.Obs_window.p90_ms);
             (exact.Serve.Latency.p99_ms, win.Obs_window.p99_ms);
           ])

(* ---- window JSON ---------------------------------------------------- *)

let test_windows_json_shape () =
  let w = Obs_window.create () in
  Obs_window.record w ~now:base 0.01;
  match Obs_window.windows_json w ~now:base with
  | J.Obj fields ->
      Alcotest.(check (list string))
        "window keys" [ "1m"; "5m"; "total" ] (List.map fst fields);
      List.iter
        (fun (_, s) ->
          match J.member "count" s with
          | Some (J.Num n) -> Alcotest.(check int) "count" 1 (int_of_float n)
          | _ -> Alcotest.fail "summary without count")
        fields
  | _ -> Alcotest.fail "windows_json is not an object"

(* ---- flight recorder ------------------------------------------------ *)

let test_flight_ring_bounded () =
  let f = Obs_flight.create ~capacity:16 () in
  for i = 0 to 39 do
    Obs_flight.record f ~fields:[ ("i", J.Num (float_of_int i)) ] "tick"
  done;
  Alcotest.(check int) "size capped" 16 (Obs_flight.size f);
  Alcotest.(check int) "recorded counts all" 40 (Obs_flight.recorded f);
  match Obs_flight.events f with
  | [] -> Alcotest.fail "ring is empty"
  | oldest :: _ as evs ->
      Alcotest.(check int) "oldest retained seq" 24 oldest.Obs_flight.seq;
      let seqs = List.map (fun (e : Obs_flight.event) -> e.Obs_flight.seq) evs in
      Alcotest.(check (list int)) "contiguous ascending seq"
        (List.init 16 (fun i -> 24 + i))
        seqs

let test_flight_dump_jsonl () =
  let f = Obs_flight.create ~capacity:16 () in
  Obs_flight.record f "executor.crash"
    ~fields:[ ("worker", J.Num 0.) ];
  Obs_flight.record f "executor.restart"
    ~fields:[ ("worker", J.Num 0.) ];
  let path = Filename.temp_file "flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Obs_flight.dump f ~path with
      | Ok n -> Alcotest.(check int) "lines written" 2 n
      | Error m -> Alcotest.fail ("dump failed: " ^ m));
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let kinds =
        List.rev_map
          (fun line ->
            match J.member "kind" (J.parse line) with
            | Some (J.Str k) -> k
            | _ -> Alcotest.fail "event line without kind")
          !lines
      in
      Alcotest.(check (list string))
        "kinds in order"
        [ "executor.crash"; "executor.restart" ]
        kinds)

let suite =
  [
    qtest prop_rotation;
    qtest prop_overwrite;
    qtest prop_merge_assoc;
    qtest prop_merge_comm;
    qtest prop_percentiles_agree;
    Alcotest.test_case "windows_json has 1m/5m/total" `Quick
      test_windows_json_shape;
    Alcotest.test_case "flight ring overwrites oldest" `Quick
      test_flight_ring_bounded;
    Alcotest.test_case "flight dump is parseable JSONL" `Quick
      test_flight_dump_jsonl;
  ]
