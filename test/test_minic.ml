(* Tests for the Mini-C frontend: lexer, parser, pretty-printer round-trip,
   type checker, and the inliner. *)

open Minic

let parse = Parser.program_of_string

let simple_prog =
  {|
int g;
float buf[8];

int add1(int x) {
  int r;
  r = x + 1;
  return r;
}

int main() {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 8; i = i + 1) {
    buf[i] = i * 2.5;
    acc = acc + i;
  }
  if (acc > 10) {
    g = add1(acc);
  } else {
    g = 0;
  }
  return g;
}
|}

let test_lexer_basic () =
  let toks = Lexer.tokenize "int x = 42; // comment\nx = x + 1;" in
  let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
  Alcotest.(check bool)
    "token stream" true
    (kinds
    = Token.
        [
          KW_INT; IDENT "x"; ASSIGN; INT_LIT 42; SEMI; IDENT "x"; ASSIGN;
          IDENT "x"; PLUS; INT_LIT 1; SEMI; EOF;
        ])

let test_lexer_floats () =
  let toks = Lexer.tokenize "1.5 2e3 0.25 7" in
  let lits =
    List.filter_map
      (fun (t : Lexer.located) ->
        match t.tok with
        | Token.FLOAT_LIT f -> Some (`F f)
        | Token.INT_LIT n -> Some (`I n)
        | _ -> None)
      toks
  in
  Alcotest.(check bool)
    "literals" true
    (lits = [ `F 1.5; `F 2000.; `F 0.25; `I 7 ])

let test_lexer_comments () =
  let toks = Lexer.tokenize "/* multi\nline */ x #include <foo>\ny" in
  let idents =
    List.filter_map
      (fun (t : Lexer.located) ->
        match t.tok with Token.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "idents" [ "x"; "y" ] idents

let test_lexer_error () =
  match Lexer.tokenize "int x = @;" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error"

let test_parse_simple () =
  let p = parse simple_prog in
  Alcotest.(check int) "globals" 2 (List.length p.Ast.globals);
  Alcotest.(check int) "functions" 2 (List.length p.Ast.funcs);
  let main = Option.get (Ast.find_func p "main") in
  Alcotest.(check bool) "main returns int" true
    (Ast.equal_ty main.Ast.fret (Ast.TScalar Ast.SInt))

let test_parse_precedence () =
  let e = Parser.expr_of_string "1 + 2 * 3 - 4 / 2" in
  (* (1 + (2*3)) - (4/2) *)
  let expected =
    Ast.(
      Binop
        ( Sub,
          Binop (Add, IntLit 1, Binop (Mul, IntLit 2, IntLit 3)),
          Binop (Div, IntLit 4, IntLit 2) ))
  in
  Alcotest.(check bool) "precedence" true (Ast.equal_expr e expected)

let test_parse_logical_precedence () =
  let e = Parser.expr_of_string "a < b && c == d || e" in
  let expected =
    Ast.(
      Binop
        ( LOr,
          Binop (LAnd, Binop (Lt, Var "a", Var "b"), Binop (Eq, Var "c", Var "d")),
          Var "e" ))
  in
  Alcotest.(check bool) "logical precedence" true (Ast.equal_expr e expected)

let test_parse_error () =
  match parse "int main() { x = ; }" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_roundtrip () =
  let p = parse simple_prog in
  let printed = Pretty.to_string p in
  let p2 = parse printed in
  Alcotest.(check bool) "round trip" true (Rename.equal_modulo_ids p p2)

let test_roundtrip_expr_parens () =
  (* printing must preserve grouping of parsed parentheses *)
  let e = Parser.expr_of_string "(1 + 2) * 3" in
  let e2 = Parser.expr_of_string (Pretty.expr_to_string e) in
  Alcotest.(check bool) "paren round trip" true (Ast.equal_expr e e2)

let test_typecheck_ok () =
  let p = parse simple_prog in
  Typecheck.check p

let expect_type_error src =
  let p = parse src in
  match Typecheck.check p with
  | exception Typecheck.Error _ -> ()
  | () -> Alcotest.fail "expected type error"

let test_typecheck_undeclared () =
  expect_type_error "int main() { x = 1; return 0; }"

let test_typecheck_bad_dims () =
  expect_type_error
    "float a[4][4];\nint main() { a[1] = 0.0; return 0; }"

let test_typecheck_float_mod () =
  expect_type_error "int main() { float x; x = 1.5 % 2.0; return 0; }"

let test_typecheck_no_main () =
  expect_type_error "int f() { return 1; }"

let test_typecheck_bad_call_arity () =
  expect_type_error
    "int f(int a, int b) { return a + b; }\nint main() { int x; x = f(1); return x; }"

let test_typecheck_void_return_value () =
  expect_type_error "void f() { return 1; }\nint main() { f(); return 0; }"

let test_typecheck_index_float () =
  expect_type_error "float a[4];\nint main() { a[1.5] = 0.0; return 0; }"

let test_inline_basic () =
  let p = Frontend.compile simple_prog in
  Alcotest.(check int) "single function after inlining" 1
    (List.length p.Ast.funcs);
  (* no user calls remain *)
  let has_user_call =
    Ast.fold_stmts
      (fun acc s ->
        acc
        || List.exists
             (fun e ->
               let found = ref false in
               Ast.iter_expr
                 (function
                   | Ast.Call (n, _) when not (Builtins.is_builtin n) ->
                       found := true
                   | _ -> ())
                 e;
               !found)
             (Ast.stmt_exprs s))
      false (List.hd p.Ast.funcs).Ast.fbody
  in
  Alcotest.(check bool) "no user calls" false has_user_call

let test_inline_array_param () =
  let src =
    {|
float data[16];
void scale(float a[16], float k) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    a[i] = a[i] * k;
  }
}
int main() {
  scale(data, 2.0);
  return 0;
}
|}
  in
  let p = Frontend.compile src in
  (* the inlined loop must reference the global array [data] directly *)
  let mentions_data = ref false in
  ignore
    (Ast.fold_stmts
       (fun () s ->
         List.iter
           (fun e ->
             Ast.iter_expr
               (function
                 | Ast.ArrRef ("data", _) -> mentions_data := true
                 | _ -> ())
               e)
           (Ast.stmt_exprs s);
         match s.Ast.sdesc with
         | Ast.Assign (Ast.LArr ("data", _), _) -> mentions_data := true
         | _ -> ())
       () (List.hd p.Ast.funcs).Ast.fbody);
  Alcotest.(check bool) "array passed by reference" true !mentions_data

let test_inline_recursion_rejected () =
  let src =
    "int f(int x) { int r; r = f(x); return r; }\nint main() { int y; y = f(1); return y; }"
  in
  match Frontend.compile src with
  | exception Frontend.Error (Frontend.Inline_error _) -> ()
  | _ -> Alcotest.fail "expected inline error on recursion"

let test_inline_nested_call_rejected () =
  let src =
    "int f(int x) { return x; }\nint main() { int y; y = 1 + f(1); return y; }"
  in
  match Frontend.compile src with
  | exception Frontend.Error (Frontend.Inline_error _) -> ()
  | _ -> Alcotest.fail "expected inline error on nested call"

let test_sid_renumber_dense () =
  let p = Frontend.compile simple_prog in
  let sids =
    Ast.fold_stmts (fun acc s -> s.Ast.sid :: acc) []
      (List.hd p.Ast.funcs).Ast.fbody
  in
  let sorted = List.sort compare sids in
  let expected = List.init (List.length sids) (fun i -> i) in
  Alcotest.(check (list int)) "dense ids from 0" expected sorted

let test_stmt_count () =
  let p = parse "int main() { int x; x = 1; if (x) { x = 2; } return x; }" in
  Alcotest.(check int) "statement count" 5 (Ast.stmt_count p)

let suite =
  [
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer floats" `Quick test_lexer_floats;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse simple program" `Quick test_parse_simple;
    Alcotest.test_case "parse arith precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse logical precedence" `Quick test_parse_logical_precedence;
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "pretty round trip" `Quick test_roundtrip;
    Alcotest.test_case "pretty parens round trip" `Quick test_roundtrip_expr_parens;
    Alcotest.test_case "typecheck ok" `Quick test_typecheck_ok;
    Alcotest.test_case "typecheck undeclared" `Quick test_typecheck_undeclared;
    Alcotest.test_case "typecheck bad dims" `Quick test_typecheck_bad_dims;
    Alcotest.test_case "typecheck float mod" `Quick test_typecheck_float_mod;
    Alcotest.test_case "typecheck no main" `Quick test_typecheck_no_main;
    Alcotest.test_case "typecheck call arity" `Quick test_typecheck_bad_call_arity;
    Alcotest.test_case "typecheck void return" `Quick test_typecheck_void_return_value;
    Alcotest.test_case "typecheck float index" `Quick test_typecheck_index_float;
    Alcotest.test_case "inline basic" `Quick test_inline_basic;
    Alcotest.test_case "inline array by reference" `Quick test_inline_array_param;
    Alcotest.test_case "inline rejects recursion" `Quick test_inline_recursion_rejected;
    Alcotest.test_case "inline rejects nested call" `Quick test_inline_nested_call_rejected;
    Alcotest.test_case "sid renumber dense" `Quick test_sid_renumber_dense;
    Alcotest.test_case "stmt count" `Quick test_stmt_count;
  ]

(* ------------------------------------------------------------------ *)
(* Additional frontend edge cases                                      *)
(* ------------------------------------------------------------------ *)

let test_lexer_operators () =
  let toks =
    Lexer.tokenize "a <= b >= c == d != e << f >> g & h | i ^ j && k || l"
  in
  let ops =
    List.filter_map
      (fun (t : Lexer.located) ->
        match t.tok with
        | Token.LE | Token.GE | Token.EQ | Token.NE | Token.SHL | Token.SHR
        | Token.AMP | Token.BAR | Token.CARET | Token.AMPAMP | Token.BARBAR ->
            Some t.tok
        | _ -> None)
      toks
  in
  Alcotest.(check int) "all operators lexed" 11 (List.length ops)

let test_parser_cast_erasure () =
  let e1 = Parser.expr_of_string "(int) x" in
  let e2 = Parser.expr_of_string "x" in
  Alcotest.(check bool) "cast erased" true (Ast.equal_expr e1 e2)

let test_parser_unary_chain () =
  let e = Parser.expr_of_string "- - x" in
  Alcotest.(check bool) "double negation" true
    (Ast.equal_expr e Ast.(Unop (Neg, Unop (Neg, Var "x"))))

let test_parser_empty_for_header () =
  let p =
    Parser.program_of_string
      "int main() { int i; i = 0; for (; i < 3; ) { i = i + 1; } return i; }"
  in
  Typecheck.check p;
  let r = Interp.Eval.run (Minic.Frontend.compile
    "int main() { int i; i = 0; for (; i < 3; ) { i = i + 1; } return i; }") in
  Alcotest.(check int) "runs" 3 (Interp.Value.to_int (Option.get r.Interp.Eval.ret))

let test_parse_else_if_chain () =
  let src =
    {|int main() {
  int x;
  int y;
  x = 2;
  if (x == 1) { y = 10; } else if (x == 2) { y = 20; } else { y = 30; }
  return y;
}|}
  in
  let r = Interp.Eval.run (Minic.Frontend.compile src) in
  Alcotest.(check int) "else-if" 20 (Interp.Value.to_int (Option.get r.Interp.Eval.ret))

let test_typecheck_shadow_builtin () =
  match Frontend.parse_and_check "int sqrt(int x) { return x; }\nint main() { return 0; }" with
  | exception Frontend.Error (Frontend.Type_error _) -> ()
  | _ -> Alcotest.fail "expected error on shadowing a builtin"

let test_typecheck_duplicate_function () =
  match
    Frontend.parse_and_check
      "int f() { return 1; }\nint f() { return 2; }\nint main() { return 0; }"
  with
  | exception Frontend.Error (Frontend.Type_error _) -> ()
  | _ -> Alcotest.fail "expected error on duplicate function"

let test_typecheck_array_shape_mismatch () =
  match
    Frontend.parse_and_check
      {|float a[8];
void g(float b[16]) { b[0] = 1.0; }
int main() { g(a); return 0; }|}
  with
  | exception Frontend.Error (Frontend.Type_error _) -> ()
  | _ -> Alcotest.fail "expected error on array shape mismatch"

let test_inline_chain () =
  (* f calls g; both inline transitively *)
  let src =
    {|
int g(int x) { return x * 2; }
int f(int x) { int t; t = g(x); return t + 1; }
int main() { int y; y = f(10); return y; }
|}
  in
  let r = Interp.Eval.run (Frontend.compile src) in
  Alcotest.(check int) "nested inline" 21
    (Interp.Value.to_int (Option.get r.Interp.Eval.ret))

let test_inline_two_sites_disjoint () =
  (* two calls to the same function get disjoint locals *)
  let src =
    {|
int f(int x) { int t; t = x + 1; return t; }
int main() { int a; int b; a = f(1); b = f(10); return a * 100 + b; }
|}
  in
  let r = Interp.Eval.run (Frontend.compile src) in
  Alcotest.(check int) "disjoint inline sites" 211
    (Interp.Value.to_int (Option.get r.Interp.Eval.ret))

let suite =
  suite
  @ [
      Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
      Alcotest.test_case "parser cast erasure" `Quick test_parser_cast_erasure;
      Alcotest.test_case "parser unary chain" `Quick test_parser_unary_chain;
      Alcotest.test_case "parser empty for header" `Quick
        test_parser_empty_for_header;
      Alcotest.test_case "else-if chain" `Quick test_parse_else_if_chain;
      Alcotest.test_case "typecheck shadow builtin" `Quick
        test_typecheck_shadow_builtin;
      Alcotest.test_case "typecheck duplicate function" `Quick
        test_typecheck_duplicate_function;
      Alcotest.test_case "typecheck array shape" `Quick
        test_typecheck_array_shape_mismatch;
      Alcotest.test_case "inline chain" `Quick test_inline_chain;
      Alcotest.test_case "inline disjoint sites" `Quick
        test_inline_two_sites_disjoint;
    ]
