(* Tests for the solver degradation ladder: when the ILP budget is
   exhausted (or the simplex core faults), parallelization still
   terminates with a feasible, differentially-validated solution tagged
   with its degradation level — and a plan that never fires leaves the
   result bit-identical to an unfaulted run. *)

let cfg = Parcore.Config.fast
let platform = Platform.Presets.platform_a_accel

let bench name =
  match Benchsuite.Suite.find name with
  | Some b -> Benchsuite.Suite.compile b
  | None -> Alcotest.fail ("unknown benchmark " ^ name)

let parallelize prog =
  match
    Parcore.Parallelize.run_program_result ~cfg
      ~approach:Parcore.Parallelize.Heterogeneous ~platform prog
  with
  | Ok out -> out
  | Error e -> Alcotest.fail ("pipeline failed: " ^ Mpsoc_error.to_string e)

(* Differential validation must run with faults disarmed: the solution
   under test was produced under the plan; executing it must not be. *)
let assert_validates prog (out : Parcore.Parallelize.outcome) =
  let _, _, ok =
    Runtime.Exec.validate ~domains:2 prog out.Parcore.Parallelize.htg
      out.Parcore.Parallelize.algo.Parcore.Algorithm.root
  in
  Alcotest.(check bool) "parallel result matches sequential" true ok

let test_budget_exhausted_ladder () =
  let prog = bench "fir_256" in
  let plan =
    {
      Fault.label = "budget";
      rules = [ { Fault.point = "ilp.budget"; at_hit = 1; action = Fault.Exhaust } ];
    }
  in
  let out = Fault.with_plan plan (fun () -> parallelize prog) in
  let algo = out.Parcore.Parallelize.algo in
  let stats = algo.Parcore.Algorithm.stats in
  let engaged =
    Ilp.Stats.ladder_engaged stats || stats.Ilp.Stats.deg_incumbent > 0
  in
  Alcotest.(check bool) "ladder (or incumbent rung) engaged" true engaged;
  assert_validates prog out

let test_simplex_fault_ladder () =
  let prog = bench "fir_256" in
  let plan =
    {
      Fault.label = "pivot";
      rules = [ { Fault.point = "simplex.pivot"; at_hit = 1; action = Fault.Raise } ];
    }
  in
  let out = Fault.with_plan plan (fun () -> parallelize prog) in
  let algo = out.Parcore.Parallelize.algo in
  (* with the LP core dead from the first pivot, anything beyond the
     sequential candidate must have come off the ladder *)
  Alcotest.(check bool) "ladder engaged" true
    (Ilp.Stats.ladder_engaged algo.Parcore.Algorithm.stats);
  assert_validates prog out

let test_degradation_tags_consistent () =
  let prog = bench "mult_10" in
  let plan =
    {
      Fault.label = "budget";
      rules = [ { Fault.point = "ilp.budget"; at_hit = 1; action = Fault.Exhaust } ];
    }
  in
  let out = Fault.with_plan plan (fun () -> parallelize prog) in
  let root = out.Parcore.Parallelize.algo.Parcore.Algorithm.root in
  let worst = Parcore.Solution.worst_degradation root in
  let rank = Parcore.Solution.degradation_rank worst in
  Alcotest.(check bool) "rank in range" true (rank >= 0 && rank <= 4);
  (* the name map is total over the rungs *)
  List.iter
    (fun d -> ignore (Parcore.Solution.degradation_name d))
    [
      Parcore.Solution.Exact;
      Parcore.Solution.Incumbent;
      Parcore.Solution.Lp_round;
      Parcore.Solution.Greedy;
      Parcore.Solution.Seq_fallback;
    ]

let test_unfired_plan_bit_identical () =
  let prog = bench "fir_256" in
  let plain = parallelize prog in
  let plan =
    {
      Fault.label = "never";
      rules =
        [ { Fault.point = "frontend.parse"; at_hit = 999_999; action = Fault.Raise } ];
    }
  in
  let armed = Fault.with_plan plan (fun () -> parallelize prog) in
  let time (o : Parcore.Parallelize.outcome) =
    o.Parcore.Parallelize.algo.Parcore.Algorithm.root.Parcore.Solution.time_us
  in
  Alcotest.(check (float 0.)) "same chosen makespan" (time plain) (time armed);
  Alcotest.(check bool) "same degradation tag" true
    (Parcore.Solution.worst_degradation
       plain.Parcore.Parallelize.algo.Parcore.Algorithm.root
    = Parcore.Solution.worst_degradation
        armed.Parcore.Parallelize.algo.Parcore.Algorithm.root)

let suite =
  [
    Alcotest.test_case "exhausted budget engages the ladder" `Slow
      test_budget_exhausted_ladder;
    Alcotest.test_case "dead simplex degrades but validates" `Slow
      test_simplex_fault_ladder;
    Alcotest.test_case "degradation tags are consistent" `Slow
      test_degradation_tags_consistent;
    Alcotest.test_case "unfired plan leaves results bit-identical" `Slow
      test_unfired_plan_bit_identical;
  ]
