(* Tests for the MPSoC simulator: time scaling, fork-join scheduling, bus
   serialization, spawn overhead, entries multiplication, and metrics. *)

open Sim

let pf = Platform.Presets.platform_a_accel (* 100/250/500/500, main = 100 *)
let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let nodep = []

let mk_fork ?(entries = 1.) ?(deps = nodep) tasks =
  Prog.Fork
    {
      Prog.flabel = "f";
      entries;
      tasks = Array.of_list tasks;
      deps;
    }

let task cls cycles = { Prog.tclass = cls; body = Prog.work cycles }

let test_work_scaling () =
  (* 1000 cycles at 100 MHz = 10 us on the main class *)
  Alcotest.(check bool) "main class" true (feq (Engine.run pf (Prog.work 1000.)) 10.)

let test_seq_sum () =
  let p = Prog.Seq [ Prog.work 500.; Prog.work 1500. ] in
  Alcotest.(check bool) "sum" true (feq (Engine.run pf p) 20.)

let test_fork_parallel () =
  (* task 0 on main (100 MHz), task 1 on class 2 (500 MHz), equal cycles;
     makespan = max(main work, spawn + fast work) *)
  let p = mk_fork [ task 0 100_000.; task 2 100_000. ] in
  let t = Engine.run pf p in
  (* main: 2us spawn + 1000us work; sibling: 2us ready + 200us *)
  Alcotest.(check bool) "parallel max" true (feq t 1002.)

let test_fork_single_task () =
  let p = mk_fork [ task 0 1000. ] in
  Alcotest.(check bool) "single task = sequential" true (feq (Engine.run pf p) 10.)

let test_fork_chain_dep () =
  (* task1 waits for task0's output (not at_start) *)
  let deps =
    [ { Prog.dsrc = 0; ddst = 1; bytes = 0.; transfers = 0.; at_start = false } ]
  in
  let p = mk_fork ~deps [ task 2 50_000.; task 2 50_000. ] in
  (* both on 500MHz: each 100us; serialized by the dep: ~200us *)
  let t = Engine.run pf p in
  Alcotest.(check bool) "chained" true (t >= 200.)

let test_fork_at_start_dep () =
  let deps =
    [ { Prog.dsrc = 0; ddst = 1; bytes = 400.; transfers = 1.; at_start = true } ]
  in
  let p = mk_fork ~deps [ task 2 50_000.; task 2 50_000. ] in
  (* transfer (2 + 400*0.005 = 4us) overlaps task 0's work: makespan ~
     max(100, 4 + 100) + spawn *)
  let t = Engine.run pf p in
  Alcotest.(check bool) "input distribution overlaps" true (t < 120.)

let test_join_edges () =
  let deps =
    [ { Prog.dsrc = 1; ddst = 0; bytes = 2000.; transfers = 1.; at_start = false } ]
  in
  let p = mk_fork ~deps [ task 0 0.; task 2 50_000. ] in
  (* sibling: ready 2us + 100us work; join transfer 0.5 + 2.5 = 3us *)
  let t = Engine.run pf p in
  Alcotest.(check bool) "join adds transfer" true (feq t 105.)

let test_bus_serialization () =
  (* two join transfers must serialize on the shared bus *)
  let deps =
    [
      { Prog.dsrc = 1; ddst = 0; bytes = 20000.; transfers = 1.; at_start = false };
      { Prog.dsrc = 2; ddst = 0; bytes = 20000.; transfers = 1.; at_start = false };
    ]
  in
  let p = mk_fork ~deps [ task 0 0.; task 2 0.; task 2 0. ] in
  let t = Engine.run pf p in
  (* each transfer 0.5 + 25 = 25.5us; serialized >= 51us *)
  Alcotest.(check bool) "bus serializes" true (t >= 51.)

let test_entries_multiply () =
  let p1 = mk_fork ~entries:1. [ task 2 1000. ] in
  let p10 = mk_fork ~entries:10. [ task 2 10_000. ] in
  (* 10 entries of a tenth-size region: same total work, same makespan *)
  Alcotest.(check bool) "entries scale" true
    (feq (Engine.run pf p10) (10. *. Engine.run pf p1))

let test_spawn_overhead () =
  let p2 = mk_fork [ task 0 0.; task 2 0. ] in
  let p4 = mk_fork [ task 0 0.; task 2 0.; task 2 0.; task 1 0. ] in
  (* spawn is sequential on the main task: more tasks, later start *)
  Alcotest.(check bool) "more spawns, more time" true
    (Engine.run pf p4 > Engine.run pf p2)

let test_nested_fork () =
  let inner = mk_fork [ task 2 50_000.; task 2 50_000. ] in
  let p = mk_fork [ { Prog.tclass = 0; body = inner }; task 1 10_000. ] in
  let t = Engine.run pf p in
  Alcotest.(check bool) "nested forks compose" true (t > 0. && t < 1000.)

let test_metrics () =
  let deps =
    [ { Prog.dsrc = 1; ddst = 0; bytes = 1000.; transfers = 2.; at_start = false } ]
  in
  let p = mk_fork ~deps [ task 0 10_000.; task 2 50_000. ] in
  let m = Engine.run_metrics pf p in
  Alcotest.(check bool) "busy main class" true (feq m.Engine.busy_us.(0) 100.);
  Alcotest.(check bool) "busy fast class" true (feq m.Engine.busy_us.(2) 100.);
  Alcotest.(check bool) "one spawn" true (feq m.Engine.spawned_tasks 1.);
  Alcotest.(check bool) "transfer count" true (feq m.Engine.transfers 2.);
  Alcotest.(check bool) "bytes" true (feq m.Engine.bytes 1000.);
  Alcotest.(check bool) "bus busy" true (m.Engine.bus_busy_us > 0.)

let test_makespan_bounds () =
  (* property: max per-task time <= makespan <= serial sum + comm + spawn *)
  let cases =
    [
      [ task 0 5000.; task 2 40_000.; task 1 10_000. ];
      [ task 2 100.; task 2 100. ];
      [ task 0 0.; task 1 70_000. ];
    ]
  in
  List.iter
    (fun tasks ->
      let p = mk_fork tasks in
      let t = Engine.run pf p in
      let times =
        List.map
          (fun (tk : Prog.task) ->
            Platform.Desc.time_us pf ~cls:tk.Prog.tclass
              (Prog.total_cycles tk.Prog.body))
          tasks
      in
      let lo = List.fold_left Float.max 0. times in
      let hi =
        List.fold_left ( +. ) 0. times
        +. (float_of_int (List.length tasks) *. pf.Platform.Desc.tco_us)
      in
      Alcotest.(check bool) "lower bound" true (t >= lo -. 1e-9);
      Alcotest.(check bool) "upper bound" true (t <= hi +. 1e-9))
    cases

let test_speedup_helper () =
  let seq = Prog.work 100_000. in
  let par = mk_fork [ task 2 100_000. ] in
  (* offloaded to the 5x faster core: ~5x *)
  let s = Engine.speedup pf ~sequential:seq ~parallel:par in
  Alcotest.(check bool) "offload speedup" true (s > 4.5 && s <= 5.0)

let test_prog_helpers () =
  let p = mk_fork [ task 0 10.; { Prog.tclass = 1; body = mk_fork [ task 1 5. ] } ] in
  Alcotest.(check int) "fork count" 2 (Prog.fork_count p);
  Alcotest.(check bool) "total cycles" true (feq (Prog.total_cycles p) 15.);
  Alcotest.(check int) "max width" 2 (Prog.max_width p)

let suite =
  [
    Alcotest.test_case "work scaling" `Quick test_work_scaling;
    Alcotest.test_case "seq sum" `Quick test_seq_sum;
    Alcotest.test_case "fork parallel" `Quick test_fork_parallel;
    Alcotest.test_case "fork single task" `Quick test_fork_single_task;
    Alcotest.test_case "fork chain dep" `Quick test_fork_chain_dep;
    Alcotest.test_case "at-start dep overlaps" `Quick test_fork_at_start_dep;
    Alcotest.test_case "join edges" `Quick test_join_edges;
    Alcotest.test_case "bus serialization" `Quick test_bus_serialization;
    Alcotest.test_case "entries multiply" `Quick test_entries_multiply;
    Alcotest.test_case "spawn overhead" `Quick test_spawn_overhead;
    Alcotest.test_case "nested forks" `Quick test_nested_fork;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "makespan bounds" `Quick test_makespan_bounds;
    Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
    Alcotest.test_case "prog helpers" `Quick test_prog_helpers;
  ]

(* ------------------------------------------------------------------ *)
(* Energy accounting                                                   *)
(* ------------------------------------------------------------------ *)

let test_energy_accounting () =
  (* 1000 us busy on the 100 MHz class (20 mW default power) = 20 uJ *)
  let m = Engine.run_metrics pf (Prog.work 100_000.) in
  Alcotest.(check bool) "sequential energy" true
    (feq ~eps:1e-6 m.Engine.energy_uj 20.);
  (* the same cycles on a 500 MHz core: 200 us at ~223.6 mW = ~44.7 uJ *)
  let m2 = Engine.run_metrics pf (mk_fork [ task 2 100_000. ]) in
  Alcotest.(check bool) "fast core burns more energy" true
    (m2.Engine.energy_uj > 2. *. m.Engine.energy_uj)

let test_energy_sums_over_classes () =
  let p = mk_fork [ task 0 100_000.; task 2 100_000. ] in
  let m = Engine.run_metrics pf p in
  let expected =
    Platform.Proc_class.energy_uj pf.Platform.Desc.classes.(0) m.Engine.busy_us.(0)
    +. Platform.Proc_class.energy_uj pf.Platform.Desc.classes.(2)
         m.Engine.busy_us.(2)
  in
  Alcotest.(check bool) "energy = sum of class energies" true
    (feq ~eps:1e-6 m.Engine.energy_uj expected)

let suite =
  suite
  @ [
      Alcotest.test_case "energy accounting" `Quick test_energy_accounting;
      Alcotest.test_case "energy sums over classes" `Quick
        test_energy_sums_over_classes;
    ]

(* ------------------------------------------------------------------ *)
(* Trace / Gantt                                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_spans () =
  let p =
    Prog.Seq
      [ Prog.work ~label:"setup" 1000.; mk_fork [ task 0 5000.; task 2 5000. ] ]
  in
  let spans = Engine.trace pf p in
  Alcotest.(check bool) "has spans" true (List.length spans >= 3);
  (* setup span precedes the fork's tasks *)
  let setup = List.find (fun s -> s.Engine.sp_label = "setup") spans in
  Alcotest.(check bool) "setup starts at 0" true (feq setup.Engine.sp_start 0.);
  Alcotest.(check bool) "setup is 10us" true (feq setup.Engine.sp_finish 10.);
  List.iter
    (fun s ->
      Alcotest.(check bool) "spans ordered" true
        (s.Engine.sp_finish >= s.Engine.sp_start))
    spans

let test_trace_metrics_unchanged () =
  (* tracing must not change what run_metrics reports *)
  let p = mk_fork [ task 0 5000.; { Prog.tclass = 2; body = mk_fork [ task 2 100. ] } ] in
  let m1 = Engine.run_metrics pf p in
  let _ = Engine.trace pf p in
  let m2 = Engine.run_metrics pf p in
  Alcotest.(check bool) "makespan stable" true
    (feq m1.Engine.makespan_us m2.Engine.makespan_us);
  Alcotest.(check bool) "spawns counted" true (m2.Engine.spawned_tasks > 0.)

let test_gantt_render () =
  let p = mk_fork [ task 0 5000.; task 2 5000. ] in
  let s = Engine.gantt ~width:30 pf (Engine.trace pf p) in
  Alcotest.(check bool) "renders bars" true (String.contains s '#');
  Alcotest.(check bool) "mentions class names" true
    (String.length s > 0 &&
     (let contains sub str =
        let n = String.length str and m = String.length sub in
        let rec go i = i + m <= n && (String.sub str i m = sub || go (i + 1)) in
        go 0
      in
      contains "arm100" s || contains "arm500" s))

let suite =
  suite
  @ [
      Alcotest.test_case "trace spans" `Quick test_trace_spans;
      Alcotest.test_case "trace keeps metrics" `Quick test_trace_metrics_unchanged;
      Alcotest.test_case "gantt render" `Quick test_gantt_render;
    ]

(* ------------------------------------------------------------------ *)
(* Nested forks: width, trace, gantt                                   *)
(* ------------------------------------------------------------------ *)

let test_max_width_nested () =
  (* a fork whose second task forks again: widths add across the nesting,
     so 1 (task 0) + 2 (inner fork) = 3 live tasks at the widest point *)
  let inner = mk_fork [ task 1 100.; task 2 100. ] in
  let p = mk_fork [ task 0 100.; { Prog.tclass = 1; body = inner } ] in
  Alcotest.(check int) "two-level width" 3 (Prog.max_width p);
  (* sequential composition does not add widths *)
  let q = Prog.Seq [ p; mk_fork [ task 0 1.; task 1 1. ] ] in
  Alcotest.(check int) "seq takes the max" 3 (Prog.max_width q);
  (* three levels: 1 + (1 + 2) = 4 *)
  let deep =
    mk_fork [ task 0 1.; { Prog.tclass = 1; body = mk_fork [ task 1 1.; { Prog.tclass = 2; body = inner } ] } ]
  in
  Alcotest.(check int) "three-level width" 4 (Prog.max_width deep)

let test_trace_nested_fork () =
  let inner = mk_fork [ task 2 5000.; task 2 5000. ] in
  let p =
    Prog.Seq [ Prog.work ~label:"pre" 1000.; mk_fork [ task 0 5000.; { Prog.tclass = 1; body = inner } ] ]
  in
  let spans = Engine.trace pf p in
  (* trace summarizes a nested fork as one span per *outer* task ("without
     crossing another fork"): pre + f.t0 + f.t1 = exactly 3 spans *)
  Alcotest.(check int) "outer spans only" 3 (List.length spans);
  let nested = List.find (fun s -> s.Engine.sp_label = "f.t1") spans in
  (* the nested task's span absorbs the inner fork: two 5000-cycle tasks on
     class 2 (500 MHz) take >= 10 us even when fully parallel *)
  Alcotest.(check bool) "nested span covers inner fork" true
    (nested.Engine.sp_finish -. nested.Engine.sp_start >= 10.);
  let m = Engine.run_metrics pf p in
  List.iter
    (fun s ->
      Alcotest.(check bool) "span within makespan" true
        (s.Engine.sp_start >= 0. && s.Engine.sp_finish <= m.Engine.makespan_us +. 1e-6))
    spans;
  (* inner spans cannot start before the sequential prefix finished *)
  let pre = List.find (fun s -> s.Engine.sp_label = "pre") spans in
  List.iter
    (fun s ->
      if s != pre then
        Alcotest.(check bool) "after prefix" true
          (s.Engine.sp_start >= pre.Engine.sp_finish -. 1e-6))
    spans

let test_gantt_nested_rows () =
  let inner = mk_fork [ task 2 5000.; task 2 5000. ] in
  let p = mk_fork [ task 0 5000.; { Prog.tclass = 1; body = inner } ] in
  let s = Engine.gantt ~width:40 pf (Engine.trace pf p) in
  Alcotest.(check bool) "renders bars" true (String.contains s '#');
  (* one row per span: at least the three leaf tasks show up *)
  let rows = List.length (String.split_on_char '\n' (String.trim s)) in
  Alcotest.(check bool) "row per task" true (rows >= 3)

let suite =
  suite
  @ [
      Alcotest.test_case "max_width nested forks" `Quick test_max_width_nested;
      Alcotest.test_case "trace nested fork" `Quick test_trace_nested_fork;
      Alcotest.test_case "gantt nested rows" `Quick test_gantt_nested_rows;
    ]
