(* Tests for the multicore execution runtime: deque order, pool fork/join
   and suspension, channels, differential validation of parallel
   execution against the sequential interpreter, and determinism across
   domain counts. *)

let cfg = Parcore.Config.fast

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_deque_lifo_fifo () =
  let q = Runtime.Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Runtime.Deque.pop q);
  Alcotest.(check (option int)) "empty steal" None (Runtime.Deque.steal q);
  List.iter (Runtime.Deque.push q) [ 1; 2; 3 ];
  (* owner pops newest first *)
  Alcotest.(check (option int)) "pop newest" (Some 3) (Runtime.Deque.pop q);
  (* thief steals oldest *)
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Runtime.Deque.steal q);
  Alcotest.(check int) "one left" 1 (Runtime.Deque.size q);
  Alcotest.(check (option int)) "last" (Some 2) (Runtime.Deque.pop q);
  Alcotest.(check (option int)) "drained" None (Runtime.Deque.steal q)

let test_deque_grows () =
  let q = Runtime.Deque.create () in
  for i = 0 to 999 do
    Runtime.Deque.push q i
  done;
  Alcotest.(check int) "size" 1000 (Runtime.Deque.size q);
  (* steal end sees insertion order *)
  for i = 0 to 999 do
    Alcotest.(check (option int)) "fifo" (Some i) (Runtime.Deque.steal q)
  done

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let with_pool domains f =
  let pool = Runtime.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> f pool)

let test_pool_fork_join domains () =
  with_pool domains (fun pool ->
      let total =
        Runtime.Pool.run pool (fun () ->
            let futs =
              List.init 50 (fun i -> Runtime.Pool.spawn pool (fun () -> i * i))
            in
            List.fold_left
              (fun acc f ->
                match Runtime.Pool.await pool f with
                | Ok v -> acc + v
                | Error e -> raise e)
              0 futs)
      in
      Alcotest.(check int) "sum of squares" 40425 total)

let test_pool_nested () =
  with_pool 4 (fun pool ->
      let v =
        Runtime.Pool.run pool (fun () ->
            let inner =
              List.init 8 (fun i ->
                  Runtime.Pool.spawn pool (fun () ->
                      let fs =
                        List.init 4 (fun j -> Runtime.Pool.spawn pool (fun () -> i + j))
                      in
                      List.fold_left
                        (fun acc f ->
                          match Runtime.Pool.await pool f with
                          | Ok v -> acc + v
                          | Error e -> raise e)
                        0 fs))
            in
            List.fold_left
              (fun acc f ->
                match Runtime.Pool.await pool f with
                | Ok v -> acc + v
                | Error e -> raise e)
              0 inner)
      in
      (* sum over i of (4i + 6) = 4*28 + 48 *)
      Alcotest.(check int) "nested sum" 160 v)

exception Boom

let test_pool_exception () =
  with_pool 2 (fun pool ->
      let r =
        Runtime.Pool.run pool (fun () ->
            let f = Runtime.Pool.spawn pool (fun () -> raise Boom) in
            Runtime.Pool.await pool f)
      in
      Alcotest.(check bool) "error captured" true (r = Error Boom))

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let test_channel_send_recv () =
  with_pool 2 (fun pool ->
      let c = Runtime.Channel.create () in
      let v =
        Runtime.Pool.run pool (fun () ->
            let _ =
              Runtime.Pool.spawn pool (fun () ->
                  Runtime.Channel.send pool c (Some (Interp.Value.VInt 42)))
            in
            (* recv suspends until the producer task runs *)
            Runtime.Channel.recv pool c)
      in
      Alcotest.(check bool)
        "value arrives" true
        (v = Ok (Some (Interp.Value.VInt 42))))

let test_channel_write_once () =
  with_pool 1 (fun pool ->
      let c = Runtime.Channel.create () in
      Runtime.Channel.send pool c (Some (Interp.Value.VInt 1));
      Runtime.Channel.send pool c (Some (Interp.Value.VInt 2));
      Runtime.Channel.poison pool c;
      let v = Runtime.Pool.run pool (fun () -> Runtime.Channel.recv pool c) in
      Alcotest.(check bool)
        "first write wins" true
        (v = Ok (Some (Interp.Value.VInt 1))))

(* ------------------------------------------------------------------ *)
(* Differential validation                                             *)
(* ------------------------------------------------------------------ *)

let solve_bench b platform =
  let prog = Benchsuite.Suite.compile b in
  let out =
    Parcore.Parallelize.run_program ~cfg ~approach:Parcore.Parallelize.Heterogeneous
      ~platform prog
  in
  (prog, out.Parcore.Parallelize.htg, out.Parcore.Parallelize.algo.Parcore.Algorithm.root)

let test_validate_bench name platform () =
  match Benchsuite.Suite.find name with
  | None -> Alcotest.fail ("unknown benchmark " ^ name)
  | Some b ->
      let prog, htg, sol = solve_bench b platform in
      let par, seq, ok = Runtime.Exec.validate ~domains:4 prog htg sol in
      if not ok then
        Alcotest.failf "parallel result diverges (par %s, seq %s)"
          (match par.Runtime.Exec.ret with
          | Some v -> Fmt.str "%a" Interp.Value.pp v
          | None -> "none")
          (match seq.Interp.Eval.ret with
          | Some v -> Fmt.str "%a" Interp.Value.pp v
          | None -> "none");
      Alcotest.(check bool) "steps in same order of magnitude" true
        (par.Runtime.Exec.steps > 0)

(* Determinism: the same program must compute the same result no matter
   how many domains execute it or how the scheduler interleaves. *)
let test_determinism () =
  match Benchsuite.Suite.find "fir_256" with
  | None -> Alcotest.fail "fir_256 missing"
  | Some b ->
      let prog, htg, sol = solve_bench b Platform.Presets.platform_a_accel in
      let reference = (Interp.Eval.run prog).Interp.Eval.ret in
      List.iter
        (fun domains ->
          for run = 1 to 10 do
            let r = Runtime.Exec.run ~domains prog htg sol in
            if not (Runtime.Exec.ret_equal r.Runtime.Exec.ret reference) then
              Alcotest.failf "run %d with %d domains diverged" run domains
          done)
        [ 1; 2; 8 ]

let test_metrics_reported () =
  match Benchsuite.Suite.find "mult_10" with
  | None -> Alcotest.fail "mult_10 missing"
  | Some b ->
      let prog, htg, sol = solve_bench b Platform.Presets.platform_a_accel in
      let r = Runtime.Exec.run ~domains:4 prog htg sol in
      let m = r.Runtime.Exec.metrics in
      Alcotest.(check int) "domains" 4 m.Runtime.Metrics.domains;
      Alcotest.(check bool) "wall clock measured" true (m.Runtime.Metrics.wall_s > 0.);
      Alcotest.(check bool) "steps counted" true (m.Runtime.Metrics.n_steps > 0);
      Alcotest.(check int) "per-worker busy" 4
        (Array.length m.Runtime.Metrics.worker_busy_s);
      Alcotest.(check int) "per-worker tasks" 4
        (Array.length m.Runtime.Metrics.worker_tasks);
      (* something actually ran in parallel *)
      Alcotest.(check bool) "tasks spawned" true (m.Runtime.Metrics.n_tasks_spawned > 0)

let suite =
  [
    Alcotest.test_case "deque lifo/fifo" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque grows" `Quick test_deque_grows;
    Alcotest.test_case "pool fork/join (1 domain)" `Quick (test_pool_fork_join 1);
    Alcotest.test_case "pool fork/join (4 domains)" `Quick (test_pool_fork_join 4);
    Alcotest.test_case "pool nested spawns" `Quick test_pool_nested;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "channel send/recv" `Quick test_channel_send_recv;
    Alcotest.test_case "channel write-once" `Quick test_channel_write_once;
    Alcotest.test_case "validate fir_256 (A)" `Slow
      (test_validate_bench "fir_256" Platform.Presets.platform_a_accel);
    Alcotest.test_case "validate mult_10 (A)" `Slow
      (test_validate_bench "mult_10" Platform.Presets.platform_a_accel);
    Alcotest.test_case "validate boundary_value (B)" `Slow
      (test_validate_bench "boundary_value" Platform.Presets.platform_b_accel);
    Alcotest.test_case "validate spectral (B)" `Slow
      (test_validate_bench "spectral" Platform.Presets.platform_b_accel);
    Alcotest.test_case "determinism across domains" `Slow test_determinism;
    Alcotest.test_case "metrics reported" `Slow test_metrics_reported;
  ]
