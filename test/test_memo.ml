(* Tests for the solve-engine additions: the structural solve cache
   ({!Ilp.Memo}), the domain-safe simplex counters, per-worker statistics
   merging, and the warm-start / known-lower-bound machinery of branch &
   bound. *)

open Ilp

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

(* a small knapsack MILP: max 3a + 4b + 5c st 2a + 3b + 4c <= 6 *)
let knapsack ?(names = [| "a"; "b"; "c" |]) ?(profit = [| 3.; 4.; 5. |]) () =
  let m = Model.create () in
  let xs = Array.mapi (fun _ n -> Model.bool_var m n) names in
  let open Lin_expr in
  Model.le m
    (sum
       [ term ~coef:2. xs.(0); term ~coef:3. xs.(1); term ~coef:4. xs.(2) ])
    (constant 6.);
  Model.set_objective m Model.Maximize
    (sum (Array.to_list (Array.mapi (fun i x -> term ~coef:profit.(i) x) xs)));
  m

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_isomorphic () =
  (* names differ, structure identical -> same fingerprint *)
  let a = knapsack () in
  let b = knapsack ~names:[| "u"; "v"; "w" |] () in
  Alcotest.(check bool)
    "isomorphic models share a fingerprint" true
    (String.equal (Memo.fingerprint a) (Memo.fingerprint b))

let test_fingerprint_distinct_costs () =
  (* a changed cost annotation must miss: no false sharing *)
  let a = knapsack () in
  let b = knapsack ~profit:[| 3.; 4.; 5.000001 |] () in
  Alcotest.(check bool)
    "distinct costs get distinct fingerprints" false
    (String.equal (Memo.fingerprint a) (Memo.fingerprint b));
  (* options and warm starts steer the search, so they key the entry *)
  let opts =
    { Branch_bound.default_options with Branch_bound.node_limit = 7 }
  in
  Alcotest.(check bool)
    "options are part of the key" false
    (String.equal (Memo.fingerprint a) (Memo.fingerprint ~options:opts a));
  Alcotest.(check bool)
    "warm starts are part of the key" false
    (String.equal (Memo.fingerprint a)
       (Memo.fingerprint ~warm_start:[| 1.; 0.; 1. |] a))

(* ------------------------------------------------------------------ *)
(* Cache behaviour through the solver facade                           *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_via_solver () =
  let cache = Memo.create () in
  let stats = Stats.create () in
  let o1 = Solver.solve ~cache ~stats (knapsack ()) in
  let o2 = Solver.solve ~cache ~stats (knapsack ~names:[| "p"; "q"; "r" |] ()) in
  Alcotest.(check int) "one ILP actually solved" 1 stats.Stats.ilps;
  Alcotest.(check int) "one cache hit" 1 stats.Stats.cache_hits;
  Alcotest.(check int) "cache: 1 hit" 1 (Memo.hits cache);
  Alcotest.(check int) "cache: 1 miss" 1 (Memo.misses cache);
  Alcotest.(check int) "cache: 1 entry" 1 (Memo.length cache);
  Alcotest.(check bool) "same objective" true (feq o1.Solver.obj o2.Solver.obj);
  Alcotest.(check bool)
    "same point" true
    (Option.get o1.Solver.x = Option.get o2.Solver.x)

let test_cache_no_false_sharing () =
  let cache = Memo.create () in
  let stats = Stats.create () in
  ignore (Solver.solve ~cache ~stats (knapsack ()));
  ignore (Solver.solve ~cache ~stats (knapsack ~profit:[| 9.; 1.; 1. |] ()));
  Alcotest.(check int) "both solved" 2 stats.Stats.ilps;
  Alcotest.(check int) "no hits" 0 stats.Stats.cache_hits;
  Alcotest.(check int) "two entries" 2 (Memo.length cache)

let test_cache_single_flight () =
  (* many domains racing on one fingerprint: exactly one solve *)
  let cache = Memo.create () in
  let stats_of = Array.init 4 (fun _ -> Stats.create ()) in
  let domains =
    Array.mapi
      (fun i st ->
        ignore i;
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              ignore (Solver.solve ~cache ~stats:st (knapsack ()))
            done))
      stats_of
  in
  Array.iter Domain.join domains;
  let merged = Stats.create () in
  Array.iter (fun st -> Stats.merge ~into:merged st) stats_of;
  Alcotest.(check int) "solved exactly once" 1 merged.Stats.ilps;
  Alcotest.(check int) "99 hits" 99 merged.Stats.cache_hits;
  Alcotest.(check int) "cache agrees" 99 (Memo.hits cache);
  Alcotest.(check int) "one entry" 1 (Memo.length cache)

(* ------------------------------------------------------------------ *)
(* Domain-safe global counters                                         *)
(* ------------------------------------------------------------------ *)

let test_atomic_counters_hammer () =
  let solves_per_domain = 200 in
  let before_solves = Atomic.get Simplex.solve_count in
  let before_iters = Atomic.get Simplex.total_iterations in
  let m () =
    let m = Model.create () in
    let x = Model.cont_var m "x" in
    let y = Model.cont_var m "y" in
    let open Lin_expr in
    Model.le m (add (term x) (term y)) (constant 4.);
    Model.le m (add (term x) (term ~coef:3. y)) (constant 6.);
    Model.set_objective m Model.Maximize
      (add (term ~coef:3. x) (term ~coef:2. y));
    m
  in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to solves_per_domain do
              match Simplex.solve (m ()) with
              | Simplex.Optimal _ -> ()
              | _ -> failwith "expected optimal"
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int)
    "no lost solve_count updates" (4 * solves_per_domain)
    (Atomic.get Simplex.solve_count - before_solves);
  Alcotest.(check bool)
    "iterations accumulated" true
    (Atomic.get Simplex.total_iterations - before_iters >= 4 * solves_per_domain)

let test_stats_merge_across_domains () =
  (* per-worker Stats instances merged -> exact totals *)
  let stats_of = Array.init 4 (fun _ -> Stats.create ()) in
  let domains =
    Array.map
      (fun st ->
        Domain.spawn (fun () ->
            for _ = 1 to 10 do
              ignore (Solver.solve ~stats:st (knapsack ()))
            done))
      stats_of
  in
  Array.iter Domain.join domains;
  let merged = Stats.create () in
  Array.iter (fun st -> Stats.merge ~into:merged st) stats_of;
  Alcotest.(check int) "ilps exact" 40 merged.Stats.ilps;
  Alcotest.(check int) "vars exact" (40 * 3) merged.Stats.vars;
  Alcotest.(check bool) "nodes accumulated" true (merged.Stats.bb_nodes > 0)

(* ------------------------------------------------------------------ *)
(* Warm starts and known lower bounds                                  *)
(* ------------------------------------------------------------------ *)

let test_known_lb_preserves_optimum () =
  let plain = Branch_bound.solve (knapsack ()) in
  Alcotest.(check bool)
    "baseline optimal" true
    (plain.Branch_bound.status = Branch_bound.Optimal);
  (* the bound lives in the internal minimize key space: negated
     objective for this maximize model *)
  let opts =
    {
      Branch_bound.default_options with
      Branch_bound.known_lb = -.plain.Branch_bound.obj -. 1e-9;
    }
  in
  let pruned = Branch_bound.solve ~options:opts (knapsack ()) in
  let status_str s =
    match s with
    | Branch_bound.Optimal -> "Optimal"
    | Branch_bound.Feasible -> "Feasible"
    | Branch_bound.Infeasible -> "Infeasible"
    | Branch_bound.Unbounded -> "Unbounded"
    | Branch_bound.Limit -> "Limit"
  in
  Alcotest.(check string)
    (Printf.sprintf "still optimal with known_lb (obj %g vs %g)"
       pruned.Branch_bound.obj plain.Branch_bound.obj)
    "Optimal"
    (status_str pruned.Branch_bound.status);
  Alcotest.(check bool)
    "same objective" true
    (feq plain.Branch_bound.obj pruned.Branch_bound.obj)

let test_extra_starts_seeding () =
  let plain = Branch_bound.solve (knapsack ()) in
  let best = Option.get plain.Branch_bound.x in
  (* seeding the optimum (plus junk that must be filtered) keeps it *)
  let seeded =
    Branch_bound.solve
      ~extra_starts:[ [| 1.; 1.; 1. |] (* infeasible: filtered *); best ]
      (knapsack ())
  in
  Alcotest.(check bool)
    "optimal with seeds" true
    (seeded.Branch_bound.status = Branch_bound.Optimal);
  Alcotest.(check bool)
    "same objective" true
    (feq plain.Branch_bound.obj seeded.Branch_bound.obj);
  Alcotest.(check bool)
    "incumbent trail non-empty" true
    (plain.Branch_bound.incumbents <> [])

let test_work_limit_binds () =
  (* a tiny work budget must stop the search deterministically and
     report Feasible, never loop *)
  let opts =
    { Branch_bound.default_options with Branch_bound.work_limit = 1. }
  in
  let r = Branch_bound.solve ~options:opts (knapsack ()) in
  Alcotest.(check bool)
    "limited run is not proven optimal" true
    (r.Branch_bound.status = Branch_bound.Feasible
    || r.Branch_bound.status = Branch_bound.Infeasible)

let suite =
  [
    Alcotest.test_case "fingerprint: isomorphic models" `Quick
      test_fingerprint_isomorphic;
    Alcotest.test_case "fingerprint: distinct costs/options" `Quick
      test_fingerprint_distinct_costs;
    Alcotest.test_case "cache hit via solver" `Quick test_cache_hit_via_solver;
    Alcotest.test_case "cache: no false sharing" `Quick
      test_cache_no_false_sharing;
    Alcotest.test_case "cache: single flight across domains" `Quick
      test_cache_single_flight;
    Alcotest.test_case "atomic counters under 4 domains" `Quick
      test_atomic_counters_hammer;
    Alcotest.test_case "stats merge across domains" `Quick
      test_stats_merge_across_domains;
    Alcotest.test_case "known_lb preserves optimum" `Quick
      test_known_lb_preserves_optimum;
    Alcotest.test_case "extra starts seeding" `Quick test_extra_starts_seeding;
    Alcotest.test_case "work limit binds" `Quick test_work_limit_binds;
  ]
