(* Tests for the reporting layer: table/bar-chart rendering and the
   experiment driver (memoization, figure structure) on a tiny ad-hoc
   benchmark so the test stays fast. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let s =
    Report.Table.render
      [ Report.Table.col ~align:Report.Table.Left "name"; Report.Table.col "v" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "has header" true (contains s "name");
  Alcotest.(check bool) "has data" true (contains s "alpha");
  (* all lines of the box have equal width *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0)
    |> List.map String.length
  in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_fmt_int_separators () =
  Alcotest.(check string) "thousands" "12,686" (Report.Table.fmt_int 12686);
  Alcotest.(check string) "small" "950" (Report.Table.fmt_int 950);
  Alcotest.(check string) "million" "1,234,567" (Report.Table.fmt_int 1234567);
  Alcotest.(check string) "negative" "-1,234" (Report.Table.fmt_int (-1234))

let test_fmt_time () =
  Alcotest.(check string) "mm:ss" "03:10" (Report.Table.fmt_time_mmss 190.);
  Alcotest.(check string) "seconds" "00:08" (Report.Table.fmt_time_mmss 8.2)

(* ------------------------------------------------------------------ *)
(* Bar chart                                                           *)
(* ------------------------------------------------------------------ *)

let test_barchart () =
  let s =
    Report.Barchart.render ~width:20 ~limit:10.
      [
        { Report.Barchart.label = "homo"; values = [ ("k1", 2.); ("k2", 4.) ] };
        { Report.Barchart.label = "het"; values = [ ("k1", 8.); ("k2", 10.) ] };
      ]
  in
  Alcotest.(check bool) "labels present" true
    (contains s "homo" && contains s "het");
  Alcotest.(check bool) "limit line" true (contains s "theoretical limit");
  (* bar for value 10 at width 20 must be the full 20 hashes *)
  Alcotest.(check bool) "full bar" true (contains s (String.make 20 '#'))

let test_barchart_monotonic () =
  let s =
    Report.Barchart.render ~width:40
      [ { Report.Barchart.label = "x"; values = [ ("a", 1.); ("b", 4.) ] } ]
  in
  let count_hashes line =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
  in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> contains l "#")
  in
  match lines with
  | [ la; lb ] ->
      Alcotest.(check bool) "bigger value, longer bar" true
        (count_hashes lb > count_hashes la)
  | _ -> Alcotest.fail "expected two bars"

(* ------------------------------------------------------------------ *)
(* Experiments driver on a tiny benchmark                              *)
(* ------------------------------------------------------------------ *)

let tiny : Benchsuite.Suite.t =
  {
    Benchsuite.Suite.name = "tiny_test";
    description = "tiny synthetic kernel for driver tests";
    source =
      {|
float a[256]; float b[256];
int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) { b[i] = sqrt(fabs(a[i])) + i * 0.5; }
  return (int) b[10];
}
|};
  }

let test_driver_memoization () =
  let ctx = Report.Experiments.create ~cfg:Parcore.Config.fast ~verbose:false () in
  let pf = Platform.Presets.platform_b_accel in
  let r1 = Report.Experiments.run ctx tiny pf Parcore.Parallelize.Heterogeneous in
  let r2 = Report.Experiments.run ctx tiny pf Parcore.Parallelize.Heterogeneous in
  Alcotest.(check bool) "memoized (same physical result)" true (r1 == r2);
  Alcotest.(check bool) "positive speedup" true (r1.Report.Experiments.speedup > 0.)

let test_driver_speedup_sane () =
  let ctx = Report.Experiments.create ~cfg:Parcore.Config.fast ~verbose:false () in
  let pf = Platform.Presets.platform_b_accel in
  let het = Report.Experiments.run ctx tiny pf Parcore.Parallelize.Heterogeneous in
  let hom = Report.Experiments.run ctx tiny pf Parcore.Parallelize.Homogeneous in
  let maxs = Platform.Desc.theoretical_speedup pf in
  Alcotest.(check bool) "hetero within bounds" true
    (het.Report.Experiments.speedup >= 0.99
    && het.Report.Experiments.speedup <= maxs +. 0.01);
  Alcotest.(check bool) "homo within bounds" true
    (hom.Report.Experiments.speedup > 0.
    && hom.Report.Experiments.speedup <= maxs +. 0.01)

let test_figure_rendering_shape () =
  (* render a figure structure directly (no heavy runs) *)
  let fig =
    {
      Report.Experiments.fig_id = "figX";
      fig_title = "Figure X: test";
      fig_platform = Platform.Presets.platform_a_accel;
      theoretical = 13.5;
      frows =
        [
          { Report.Experiments.fbench = "k1"; homo = 3.3; hetero = 8.7 };
          { Report.Experiments.fbench = "k2"; homo = 1.0; hetero = 2.0 };
        ];
    }
  in
  let s = Report.Experiments.render_figure fig in
  Alcotest.(check bool) "title" true (contains s "Figure X");
  Alcotest.(check bool) "averages" true (contains s "average");
  Alcotest.(check bool) "both benchmarks" true (contains s "k1" && contains s "k2")

let test_table1_rendering_shape () =
  let rows =
    [
      {
        Report.Experiments.tbench = "demo";
        homo_time_s = 8.;
        homo_ilps = 22;
        homo_vars = 6946;
        homo_constrs = 12867;
        het_time_s = 190.;
        het_ilps = 93;
        het_vars = 55965;
        het_constrs = 80640;
      };
    ]
  in
  let s = Report.Experiments.render_table1 rows in
  Alcotest.(check bool) "benchmark name" true (contains s "demo");
  Alcotest.(check bool) "formatted counts" true (contains s "6,946");
  Alcotest.(check bool) "ratio block" true (contains s "x");
  Alcotest.(check bool) "average row" true (contains s "average")

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "fmt_int separators" `Quick test_fmt_int_separators;
    Alcotest.test_case "fmt_time" `Quick test_fmt_time;
    Alcotest.test_case "barchart" `Quick test_barchart;
    Alcotest.test_case "barchart monotonic" `Quick test_barchart_monotonic;
    Alcotest.test_case "driver memoization" `Slow test_driver_memoization;
    Alcotest.test_case "driver speedup sane" `Slow test_driver_speedup_sane;
    Alcotest.test_case "figure rendering" `Quick test_figure_rendering_shape;
    Alcotest.test_case "table1 rendering" `Quick test_table1_rendering_shape;
  ]
