(* Tests for the parallelizer core: the ILP formulation, loop splitting,
   Algorithm 1, candidate management, implementation, and end-to-end
   speedup sanity on small programs. *)

open Parcore

let pf_a = Platform.Presets.platform_a_accel
let pf_a_slow = Platform.Presets.platform_a_slow
let cfg = Config.fast

let run ?(platform = pf_a) ?(approach = Parallelize.Heterogeneous) src =
  Parallelize.run ~cfg ~approach ~platform src

(* a program with two independent heavy loops and a cheap tail *)
let two_independent =
  {|
float a[512]; float b[512];
int main() {
  int i;
  for (i = 0; i < 512; i = i + 1) { a[i] = sin(i * 0.01) * 2.0; }
  for (i = 0; i < 512; i = i + 1) { b[i] = cos(i * 0.02) + 1.0; }
  return (int) (a[5] + b[7]);
}
|}

(* strictly sequential dependence chain *)
let chain_src =
  {|
int main() {
  int i;
  float s;
  s = 1.0;
  for (i = 0; i < 2000; i = i + 1) { s = s + sqrt(s) * 0.001; }
  return (int) (s * 100.0);
}
|}

let doall_src =
  {|
float a[1024]; float b[1024];
int main() {
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    b[i] = sqrt(fabs(sin(i * 0.01))) + a[i] * 2.0;
  }
  return (int) b[3];
}
|}

(* ------------------------------------------------------------------ *)
(* Solution candidates                                                 *)
(* ------------------------------------------------------------------ *)

let mk_cand ?(node_id = 0) ?(cls = 0) ~time ~units () =
  {
    Solution.node_id;
    main_class = cls;
    time_us = time;
    extra_units = [| units |];
    kind = Solution.Seq [||];
    degrade = Solution.Exact;
  }

let test_prune_pareto () =
  let cands =
    [
      mk_cand ~time:100. ~units:0 ();
      mk_cand ~time:60. ~units:1 ();
      mk_cand ~time:80. ~units:2 ();
      (* dominated: slower and more units *)
      mk_cand ~time:30. ~units:3 ();
    ]
  in
  let kept = Solution.prune ~max_keep:4 cands in
  Alcotest.(check int) "dominated dropped" 3 (List.length kept);
  Alcotest.(check bool) "keeps the fastest" true
    (List.exists (fun s -> s.Solution.time_us = 30.) kept);
  Alcotest.(check bool) "keeps the cheapest" true
    (List.exists (fun s -> s.Solution.time_us = 100.) kept)

let test_prune_cap () =
  let cands =
    List.init 10 (fun i ->
        mk_cand ~time:(100. -. (10. *. float_of_int i)) ~units:i ())
  in
  let kept = Solution.prune ~max_keep:3 cands in
  Alcotest.(check int) "capped" 3 (List.length kept);
  Alcotest.(check bool) "extremes kept" true
    (List.exists (fun s -> s.Solution.time_us = 100.) kept
    && List.exists (fun s -> s.Solution.time_us = 10.) kept)

let test_total_units () =
  let s = mk_cand ~time:1. ~units:3 () in
  Alcotest.(check int) "units = 1 + extras" 4 (Solution.total_units s)

(* ------------------------------------------------------------------ *)
(* End-to-end behaviour                                                *)
(* ------------------------------------------------------------------ *)

let test_independent_loops_parallelize () =
  let out = run two_independent in
  let s = Parallelize.speedup out in
  Alcotest.(check bool) "speedup > 2" true (s > 2.)

let test_chain_no_slowdown () =
  (* a sequential chain must never be "parallelized" into a slowdown *)
  let out = run chain_src in
  let s = Parallelize.speedup out in
  Alcotest.(check bool) "no slowdown" true (s >= 0.99)

let test_chain_offloads_to_fast_core () =
  (* scenario I: the chain can move to a 5x faster core *)
  let out = run chain_src in
  let s = Parallelize.speedup out in
  Alcotest.(check bool) "offloaded" true (s > 2.)

let test_doall_split_near_theoretical () =
  let out = run doall_src in
  let s = Parallelize.speedup out in
  let max_s = Platform.Desc.theoretical_speedup pf_a in
  Alcotest.(check bool) "substantial speedup" true (s > 0.5 *. max_s);
  Alcotest.(check bool) "below theoretical" true (s <= max_s +. 0.01)

let test_hetero_beats_homo () =
  let het = run doall_src in
  let hom = run ~approach:Parallelize.Homogeneous doall_src in
  Alcotest.(check bool) "hetero >= homo" true
    (Parallelize.speedup het >= Parallelize.speedup hom -. 0.05)

let test_homo_never_exceeds_hetero_theory () =
  let hom = run ~approach:Parallelize.Homogeneous doall_src in
  Alcotest.(check bool) "homo below theoretical" true
    (Parallelize.speedup hom <= Platform.Desc.theoretical_speedup pf_a)

let test_scenario2_hetero_no_slowdown () =
  (* the paper's claim 4: the heterogeneous approach never produced
     speedups below 1 *)
  List.iter
    (fun src ->
      let out = run ~platform:pf_a_slow src in
      Alcotest.(check bool) "no slowdown in scenario II" true
        (Parallelize.speedup out >= 0.99))
    [ two_independent; chain_src; doall_src ]

let test_determinism () =
  let o1 = run doall_src and o2 = run doall_src in
  Alcotest.(check bool) "same modelled time" true
    (o1.Parallelize.algo.Algorithm.root.Solution.time_us
    = o2.Parallelize.algo.Algorithm.root.Solution.time_us);
  Alcotest.(check bool) "same simulated speedup" true
    (Parallelize.speedup o1 = Parallelize.speedup o2)

(* ------------------------------------------------------------------ *)
(* Structural validity of solutions                                    *)
(* ------------------------------------------------------------------ *)

let rec check_solution pf (node : Htg.Node.t) (s : Solution.t) =
  let nclasses = Platform.Desc.num_classes pf in
  Alcotest.(check int) "node id matches" node.Htg.Node.id s.Solution.node_id;
  Alcotest.(check bool) "main class valid" true
    (s.Solution.main_class >= 0 && s.Solution.main_class < nclasses);
  (match s.Solution.kind with
  | Solution.Seq _ -> ()
  | Solution.Split sp ->
      let total = Array.fold_left ( +. ) 0. sp.Solution.chunk_iters in
      (match node.Htg.Node.kind with
      | Htg.Node.Loop l ->
          Alcotest.(check bool) "chunks sum to iterations" true
            (Float.abs (total -. l.iters_per_entry) < 1e-6)
      | _ -> Alcotest.fail "split on a non-loop node");
      Array.iteri
        (fun t n ->
          if n > 0. then
            Alcotest.(check bool) "chunk class valid" true
              (sp.Solution.split_class.(t) >= 0
              && sp.Solution.split_class.(t) < nclasses))
        sp.Solution.chunk_iters
  | Solution.Pipeline p ->
      Array.iteri
        (fun n st ->
          ignore n;
          Alcotest.(check bool) "stage in range" true
            (st >= 0 && st < Array.length p.Solution.stage_class);
          Alcotest.(check bool) "assigned stage is used" true
            (p.Solution.stage_class.(st) >= 0))
        p.Solution.stage_of;
      (* stages are contiguous in body order *)
      let prev = ref 0 in
      Array.iter
        (fun st ->
          Alcotest.(check bool) "stages monotone" true (st >= !prev);
          prev := st)
        p.Solution.stage_of
  | Solution.Par p ->
      Array.iteri
        (fun n t ->
          Alcotest.(check bool) "assignment in range" true
            (t >= 0 && t < Array.length p.Solution.task_class);
          Alcotest.(check bool) "assigned task is used" true
            (p.Solution.task_class.(t) >= 0);
          check_solution pf node.Htg.Node.children.(n) p.Solution.child_choice.(n))
        p.Solution.assignment);
  (* unit accounting: total units within the platform *)
  Alcotest.(check bool) "units within platform" true
    (Solution.total_units s <= Platform.Desc.total_units pf)

let test_solution_validity () =
  List.iter
    (fun src ->
      let out = run src in
      check_solution pf_a out.Parallelize.htg
        out.Parallelize.algo.Algorithm.root)
    [ two_independent; chain_src; doall_src ]

let test_per_class_unit_budget () =
  (* extra units per class never exceed what the platform has *)
  let out = run two_independent in
  let units = Platform.Desc.units_per_class pf_a in
  let root = out.Parallelize.algo.Algorithm.root in
  Array.iteri
    (fun c extra ->
      let avail =
        units.(c) - if c = pf_a.Platform.Desc.main_class then 1 else 0
      in
      Alcotest.(check bool) "per-class budget" true (extra <= avail))
    root.Solution.extra_units

let test_sets_always_have_seq () =
  let out = run two_independent in
  Hashtbl.iter
    (fun _ set ->
      Array.iter
        (fun cands ->
          Alcotest.(check bool) "sequential candidate present" true
            (List.exists Solution.is_sequential cands))
        set)
    out.Parallelize.algo.Algorithm.sets

(* ------------------------------------------------------------------ *)
(* Stats / Table I behaviour                                           *)
(* ------------------------------------------------------------------ *)

let test_hetero_more_ilps_than_homo () =
  let het = run two_independent in
  let hom = run ~approach:Parallelize.Homogeneous two_independent in
  let hs = het.Parallelize.algo.Algorithm.stats in
  let ms = hom.Parallelize.algo.Algorithm.stats in
  Alcotest.(check bool) "more ILPs" true (hs.Ilp.Stats.ilps > ms.Ilp.Stats.ilps);
  Alcotest.(check bool) "more variables" true (hs.Ilp.Stats.vars > ms.Ilp.Stats.vars);
  Alcotest.(check bool) "more constraints" true
    (hs.Ilp.Stats.constrs > ms.Ilp.Stats.constrs)

(* ------------------------------------------------------------------ *)
(* Annotation output                                                   *)
(* ------------------------------------------------------------------ *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_annotation_mentions_classes () =
  let out = run doall_src in
  let spec =
    Annotate.specification pf_a out.Parallelize.htg
      out.Parallelize.algo.Algorithm.root
  in
  Alcotest.(check bool) "mentions a fast class" true
    (contains_substring spec "arm500")

let test_premapping_nonempty_for_parallel () =
  let out = run doall_src in
  let pm =
    Annotate.pre_mapping pf_a out.Parallelize.htg
      out.Parallelize.algo.Algorithm.root
  in
  Alcotest.(check bool) "pre-mapping has entries" true (List.length pm > 0)

let test_ablation_no_split_weaker () =
  let src = doall_src in
  let full = run src in
  let nosplit =
    Parallelize.run
      ~cfg:{ cfg with Config.enable_loop_split = false }
      ~approach:Parallelize.Heterogeneous ~platform:pf_a src
  in
  Alcotest.(check bool) "loop splitting contributes" true
    (Parallelize.speedup full >= Parallelize.speedup nosplit -. 0.05)

let suite =
  [
    Alcotest.test_case "prune pareto" `Quick test_prune_pareto;
    Alcotest.test_case "prune cap" `Quick test_prune_cap;
    Alcotest.test_case "total units" `Quick test_total_units;
    Alcotest.test_case "independent loops parallelize" `Slow
      test_independent_loops_parallelize;
    Alcotest.test_case "chain no slowdown" `Slow test_chain_no_slowdown;
    Alcotest.test_case "chain offloads" `Slow test_chain_offloads_to_fast_core;
    Alcotest.test_case "doall split near theoretical" `Slow
      test_doall_split_near_theoretical;
    Alcotest.test_case "hetero beats homo" `Slow test_hetero_beats_homo;
    Alcotest.test_case "homo below theoretical" `Slow
      test_homo_never_exceeds_hetero_theory;
    Alcotest.test_case "scenario II no slowdown" `Slow
      test_scenario2_hetero_no_slowdown;
    Alcotest.test_case "determinism" `Slow test_determinism;
    Alcotest.test_case "solution validity" `Slow test_solution_validity;
    Alcotest.test_case "per-class unit budget" `Slow test_per_class_unit_budget;
    Alcotest.test_case "sets always have seq" `Slow test_sets_always_have_seq;
    Alcotest.test_case "hetero more ILPs" `Slow test_hetero_more_ilps_than_homo;
    Alcotest.test_case "annotation mentions classes" `Slow
      test_annotation_mentions_classes;
    Alcotest.test_case "pre-mapping nonempty" `Slow
      test_premapping_nonempty_for_parallel;
    Alcotest.test_case "ablation: no-split weaker" `Slow
      test_ablation_no_split_weaker;
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline extension (paper future work, opt-in)                      *)
(* ------------------------------------------------------------------ *)

(* three chained filter stages, each with its own carried state: not
   DOALL, not task-parallel, but perfectly pipelineable *)
let pipeline_src =
  {|
float x[2048]; float y1[2048]; float y2[2048]; float out[2048];
int main() {
  int n;
  float s1;
  float s2;
  float s3;
  s1 = 0.1;
  s2 = 0.2;
  s3 = 0.3;
  for (n = 0; n < 2048; n = n + 1) { x[n] = sin(n * 0.01); }
  for (n = 0; n < 2048; n = n + 1) {
    s1 = s1 * 0.9 + x[n];
    y1[n] = sqrt(fabs(s1)) + s1 * s1;
    s2 = s2 * 0.8 + y1[n];
    y2[n] = sin(s2) + cos(s2) * 0.5;
    s3 = s3 * 0.7 + y2[n];
    out[n] = s3 * 1.01 + y2[n] * 0.25;
  }
  return (int) (out[100] * 100.0);
}
|}

(* pipeline ILPs need the default solver budget; the fast profile's
   limits stop at the single-stage warm start *)
let pipe_cfg = { Config.default with Config.enable_pipeline = true }

let test_pipeline_candidate_found () =
  let out =
    Parallelize.run ~cfg:pipe_cfg ~approach:Parallelize.Heterogeneous
      ~platform:Platform.Presets.platform_b_accel pipeline_src
  in
  (* the chosen solution tree must contain a Pipeline somewhere *)
  let rec has_pipeline (s : Solution.t) =
    match s.Solution.kind with
    | Solution.Pipeline _ -> true
    | Solution.Seq cs -> Array.exists has_pipeline cs
    | Solution.Par p -> Array.exists has_pipeline p.Solution.child_choice
    | Solution.Split _ -> false
  in
  Alcotest.(check bool) "pipeline used" true
    (has_pipeline out.Parallelize.algo.Algorithm.root);
  Alcotest.(check bool) "pipeline speeds up" true
    (Parallelize.speedup out > 1.5)

let test_pipeline_off_by_default () =
  Alcotest.(check bool) "flag off" false
    Config.default.Config.enable_pipeline;
  (* without the flag, the same program gets no Pipeline candidates *)
  let out =
    Parallelize.run ~cfg ~approach:Parallelize.Heterogeneous
      ~platform:Platform.Presets.platform_b_accel pipeline_src
  in
  let rec has_pipeline (s : Solution.t) =
    match s.Solution.kind with
    | Solution.Pipeline _ -> true
    | Solution.Seq cs -> Array.exists has_pipeline cs
    | Solution.Par p -> Array.exists has_pipeline p.Solution.child_choice
    | Solution.Split _ -> false
  in
  Alcotest.(check bool) "no pipeline without the flag" false
    (has_pipeline out.Parallelize.algo.Algorithm.root)

let test_pipeline_validity () =
  let out =
    Parallelize.run ~cfg:pipe_cfg ~approach:Parallelize.Heterogeneous
      ~platform:Platform.Presets.platform_b_accel pipeline_src
  in
  check_solution Platform.Presets.platform_b_accel out.Parallelize.htg
    out.Parallelize.algo.Algorithm.root;
  (* realization conserves cycles *)
  let total = out.Parallelize.htg.Htg.Node.total_cycles in
  let realized = Sim.Prog.total_cycles out.Parallelize.program in
  Alcotest.(check bool) "cycles conserved" true
    (Float.abs (realized -. total) <= (1e-6 *. total) +. 1.)

let suite =
  suite
  @ [
      Alcotest.test_case "pipeline candidate found" `Slow
        test_pipeline_candidate_found;
      Alcotest.test_case "pipeline off by default" `Slow
        test_pipeline_off_by_default;
      Alcotest.test_case "pipeline validity" `Slow test_pipeline_validity;
    ]
