(* Determinism of the parallel parallelizer: for every suite benchmark
   and both evaluation platforms, the chosen solution sets must be
   bit-identical whether the solve engine runs sequentially ([jobs = 1])
   or fans out onto 2 or 8 worker domains.  ILP and cache-hit counts must
   match too (the cache is single-flight, so even those are exact).

   The configuration pins the deterministic work limit as the only solve
   bound (wall budget disabled): wall-time limits are the one knob that
   could legitimately break reproducibility across schedules. *)

let cfg =
  {
    Parcore.Config.fast with
    Parcore.Config.ilp_time_limit_s = infinity;
    ilp_work_limit = 1e7;
  }

(* canonical projection of a result: root choice, per-class root set,
   every node's candidate set, and the (deterministic) counters *)
let canon (r : Parcore.Algorithm.result) =
  ( r.Parcore.Algorithm.root,
    r.Parcore.Algorithm.root_set,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.Parcore.Algorithm.sets []),
    r.Parcore.Algorithm.stats.Ilp.Stats.ilps,
    r.Parcore.Algorithm.stats.Ilp.Stats.cache_hits )

let check_benchmark ?(cfg = cfg) (b : Benchsuite.Suite.t) (pf : Platform.Desc.t)
    () =
  let prog = Benchsuite.Suite.compile b in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  let run jobs =
    let out =
      Parcore.Parallelize.run_program
        ~cfg:{ cfg with Parcore.Config.jobs }
        ~profile ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf prog
    in
    canon out.Parcore.Parallelize.algo
  in
  let r1 = run 1 in
  let r2 = run 2 in
  let r8 = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s: jobs=2 matches jobs=1" b.Benchsuite.Suite.name
       pf.Platform.Desc.name)
    true (r1 = r2);
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s: jobs=8 matches jobs=1" b.Benchsuite.Suite.name
       pf.Platform.Desc.name)
    true (r1 = r8)

(* The ILP acceleration toggles (PR 7) change the search trajectory, so
   each combination must independently stay bit-identical across worker
   counts.  The default config above runs them all on over the full
   suite; here a small benchmark subset re-runs with them all off and
   with a mixed set, so a toggle can't smuggle in schedule-dependent
   state (e.g. a racy cut pool or seed). *)
let toggle_cfgs =
  [
    ( "accel-off",
      {
        cfg with
        Parcore.Config.ilp_presolve = false;
        ilp_symmetry = false;
        ilp_cuts = false;
        ilp_seed_incumbent = false;
      } );
    ( "accel-mixed",
      {
        cfg with
        Parcore.Config.ilp_presolve = true;
        ilp_symmetry = false;
        ilp_cuts = true;
        ilp_seed_incumbent = false;
      } );
  ]

(* The solver portfolio (PR 10) must be reproducible too: the heuristic
   engine is seeded-deterministic and the race decision depends only on
   deterministic work counters, so portfolio and pure-heuristic runs must
   stay bit-identical across worker counts exactly like the ILP engine
   (which the default config above already covers).  [canon] includes the
   ilps and cache_hits counters, so a schedule-dependent race would show
   up even when both engines happen to pick the same schedule. *)
let solver_cfgs =
  [
    ( "portfolio",
      {
        cfg with
        Parcore.Config.solver = Parcore.Config.Portfolio;
        portfolio_work_limit = 4e6;
      } );
    ("heuristic", { cfg with Parcore.Config.solver = Parcore.Config.Heuristic });
  ]

let toggle_benchmarks =
  List.filter
    (fun (b : Benchsuite.Suite.t) ->
      List.mem b.Benchsuite.Suite.name [ "boundary_value"; "mult_10"; "fir_256" ])
    Benchsuite.Suite.all

let suite =
  List.concat_map
    (fun (b : Benchsuite.Suite.t) ->
      List.map
        (fun (pf : Platform.Desc.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" b.Benchsuite.Suite.name
               pf.Platform.Desc.name)
            `Slow
            (check_benchmark b pf))
        [
          Platform.Presets.platform_a_accel; Platform.Presets.platform_b_accel;
        ])
    Benchsuite.Suite.all
  @ List.concat_map
      (fun (name, cfg) ->
        List.map
          (fun (b : Benchsuite.Suite.t) ->
            Alcotest.test_case
              (Printf.sprintf "%s / %s / %s" b.Benchsuite.Suite.name
                 Platform.Presets.platform_a_accel.Platform.Desc.name name)
              `Slow
              (check_benchmark ~cfg b Platform.Presets.platform_a_accel))
          toggle_benchmarks)
      toggle_cfgs
  @ List.concat_map
      (fun (name, cfg) ->
        List.map
          (fun (b : Benchsuite.Suite.t) ->
            Alcotest.test_case
              (Printf.sprintf "%s / %s / solver=%s" b.Benchsuite.Suite.name
                 Platform.Presets.platform_a_accel.Platform.Desc.name name)
              `Slow
              (check_benchmark ~cfg b Platform.Presets.platform_a_accel))
          toggle_benchmarks)
      solver_cfgs
