(* Determinism of the parallel parallelizer: for every suite benchmark
   and both evaluation platforms, the chosen solution sets must be
   bit-identical whether the solve engine runs sequentially ([jobs = 1])
   or fans out onto 2 or 8 worker domains.  ILP and cache-hit counts must
   match too (the cache is single-flight, so even those are exact).

   The configuration pins the deterministic work limit as the only solve
   bound (wall budget disabled): wall-time limits are the one knob that
   could legitimately break reproducibility across schedules. *)

let cfg =
  {
    Parcore.Config.fast with
    Parcore.Config.ilp_time_limit_s = infinity;
    ilp_work_limit = 1e7;
  }

(* canonical projection of a result: root choice, per-class root set,
   every node's candidate set, and the (deterministic) counters *)
let canon (r : Parcore.Algorithm.result) =
  ( r.Parcore.Algorithm.root,
    r.Parcore.Algorithm.root_set,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.Parcore.Algorithm.sets []),
    r.Parcore.Algorithm.stats.Ilp.Stats.ilps,
    r.Parcore.Algorithm.stats.Ilp.Stats.cache_hits )

let check_benchmark (b : Benchsuite.Suite.t) (pf : Platform.Desc.t) () =
  let prog = Benchsuite.Suite.compile b in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  let run jobs =
    let out =
      Parcore.Parallelize.run_program
        ~cfg:{ cfg with Parcore.Config.jobs }
        ~profile ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf prog
    in
    canon out.Parcore.Parallelize.algo
  in
  let r1 = run 1 in
  let r2 = run 2 in
  let r8 = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s: jobs=2 matches jobs=1" b.Benchsuite.Suite.name
       pf.Platform.Desc.name)
    true (r1 = r2);
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s: jobs=8 matches jobs=1" b.Benchsuite.Suite.name
       pf.Platform.Desc.name)
    true (r1 = r8)

let suite =
  List.concat_map
    (fun (b : Benchsuite.Suite.t) ->
      List.map
        (fun (pf : Platform.Desc.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" b.Benchsuite.Suite.name
               pf.Platform.Desc.name)
            `Slow
            (check_benchmark b pf))
        [
          Platform.Presets.platform_a_accel; Platform.Presets.platform_b_accel;
        ])
    Benchsuite.Suite.all
