(* Input fuzzing: arbitrary bytes thrown at the Mini-C frontend and
   garbled text thrown at the platform parser must come back as typed
   errors through the Result APIs — never as an escaping exception. *)

let cfg = Parcore.Config.fast
let platform = Platform.Presets.platform_a_accel

(* Arbitrary byte strings, with a C-flavoured generator mixed in so some
   inputs get past the lexer into the parser. *)
let garbage_arb =
  let open QCheck in
  let any_bytes = string_of_size (Gen.int_range 0 200) in
  let c_ish =
    let frag =
      Gen.oneofl
        [
          "int "; "float "; "main"; "() {"; "}"; ";"; "="; "+"; "for"; "while";
          "if"; "return "; "x"; "i"; "0"; "1.5"; "a["; "]"; "("; ")"; "\n";
          "/*"; "*/"; "\"";
        ]
    in
    QCheck.make
      Gen.(map (String.concat "") (list_size (int_range 0 40) frag))
  in
  QCheck.oneof [ any_bytes; c_ish ]

let frontend_never_escapes =
  QCheck.Test.make ~count:200 ~name:"frontend fuzz: typed errors only"
    garbage_arb (fun src ->
      match
        Parcore.Parallelize.run_result ~cfg
          ~approach:Parcore.Parallelize.Heterogeneous ~platform src
      with
      | Ok _ -> true (* a random string that parses and runs is fine *)
      | Error e ->
          (* the error is typed and maps to a sane exit code *)
          let code = Mpsoc_error.exit_code e in
          code = 1 || code = 3 || code = 4
      | exception e ->
          QCheck.Test.fail_reportf "exception escaped the Result API: %s"
            (Printexc.to_string e))

(* Garbled platform descriptions: random bytes, plus single-character
   mutations of a valid description (the nastier case: almost-valid
   input). *)
let platform_text_arb =
  let valid = Platform.Parse.to_string Platform.Presets.platform_b_accel in
  let open QCheck in
  let mutated =
    QCheck.make
      Gen.(
        let* pos = int_range 0 (String.length valid - 1) in
        let* c = printable in
        let b = Bytes.of_string valid in
        Bytes.set b pos c;
        return (Bytes.to_string b))
  in
  QCheck.oneof [ string_of_size (Gen.int_range 0 200); mutated ]

let platform_parse_never_escapes =
  QCheck.Test.make ~count:300 ~name:"platform fuzz: typed errors only"
    platform_text_arb (fun text ->
      match Platform.Parse.of_string_result text with
      | Ok _ -> true
      | Error e ->
          e.Mpsoc_error.phase = Mpsoc_error.Platform
          && Mpsoc_error.exit_code e = 3
      | exception e ->
          QCheck.Test.fail_reportf "exception escaped of_string_result: %s"
            (Printexc.to_string e))

let suite =
  [
    QCheck_alcotest.to_alcotest frontend_never_escapes;
    QCheck_alcotest.to_alcotest platform_parse_never_escapes;
  ]
