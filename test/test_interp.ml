(* Tests for the profiling interpreter: computed values, execution counts,
   work attribution, and error behaviour. *)

open Minic
open Interp

let run src = Eval.run (Frontend.compile src)

let ret_int src =
  match (run src).Eval.ret with
  | Some v -> Value.to_int v
  | None -> Alcotest.fail "program returned no value"

let test_arith () =
  Alcotest.(check int) "arith" 7 (ret_int "int main() { return 1 + 2 * 3; }")

let test_float_math () =
  let r =
    run
      "int main() { float x; x = sqrt(16.0) + fabs(0.0 - 2.0); return (int) x; }"
  in
  Alcotest.(check int) "sqrt+fabs" 6 (Value.to_int (Option.get r.Eval.ret))

let test_loop_sum () =
  let src =
    "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"
  in
  Alcotest.(check int) "sum 0..9" 45 (ret_int src)

let test_while_loop () =
  let src =
    "int main() { int i; int s; i = 0; s = 0; while (i < 5) { s = s + 2; i = i + 1; } return s; }"
  in
  Alcotest.(check int) "while" 10 (ret_int src)

let test_array_2d () =
  let src =
    {|
float m[3][3];
int main() {
  int i;
  int j;
  float tr;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      m[i][j] = i * 3 + j;
    }
  }
  tr = m[0][0] + m[1][1] + m[2][2];
  return (int) tr;
}
|}
  in
  Alcotest.(check int) "trace" 12 (ret_int src)

let test_function_call_value () =
  let src =
    {|
int square(int x) { int r; r = x * x; return r; }
int main() { int y; y = square(7); return y; }
|}
  in
  Alcotest.(check int) "square via inline" 49 (ret_int src)

let test_shadowing_scopes () =
  let src =
    {|
int main() {
  int x;
  int y;
  x = 1;
  y = 0;
  if (x) {
    int s;
    s = 10;
    y = s;
  }
  return y + x;
}
|}
  in
  Alcotest.(check int) "scoped decl" 11 (ret_int src)

let test_div_by_zero () =
  match run "int main() { int x; x = 1 / 0; return x; }" with
  | exception Eval.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime error"

let test_oob_index () =
  match run "float a[4];\nint main() { a[9] = 1.0; return 0; }" with
  | exception Eval.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

let test_step_limit () =
  let src = "int main() { int i; i = 0; while (1) { i = i + 1; } return i; }" in
  match Eval.run ~max_steps:10_000 (Frontend.compile src) with
  | exception Eval.Step_limit_exceeded _ -> ()
  | _ -> Alcotest.fail "expected step limit"

(* profile: loop body statement executes exactly N times *)
let test_profile_counts () =
  let prog =
    Frontend.compile
      "int main() { int i; int s; s = 0; for (i = 0; i < 17; i = i + 1) { s = s + i; } return s; }"
  in
  let r = Eval.run prog in
  (* find the body assignment's sid: the statement 's = s + i' *)
  let body_sid = ref (-1) in
  ignore
    (Ast.fold_stmts
       (fun () s ->
         match s.Ast.sdesc with
         | Ast.Assign (Ast.LVar "s", Ast.Binop (Ast.Add, Ast.Var "s", Ast.Var "i"))
           ->
             body_sid := s.Ast.sid
         | _ -> ())
       ()
       (List.hd prog.Ast.funcs).Ast.fbody);
  Alcotest.(check bool) "found body stmt" true (!body_sid >= 0);
  Alcotest.(check int) "body executed 17 times" 17
    (Profile.count r.Eval.profile !body_sid)

(* work is monotone in iteration count *)
let test_profile_work_monotone () =
  let total n =
    let prog =
      Frontend.compile
        (Printf.sprintf
           "int main() { int i; int s; s = 0; for (i = 0; i < %d; i = i + 1) { s = s + i; } return s; }"
           n)
    in
    (Eval.run prog).Eval.profile.Profile.total_work
  in
  let w10 = total 10 and w100 = total 100 in
  Alcotest.(check bool) "more iterations, more work" true (w100 > w10 *. 5.)

(* determinism: same program, same profile *)
let test_determinism () =
  let src =
    "int main() { int i; int s; s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i * i; } return s; }"
  in
  let r1 = run src and r2 = run src in
  Alcotest.(check bool) "same total work" true
    (r1.Eval.profile.Profile.total_work = r2.Eval.profile.Profile.total_work);
  Alcotest.(check int) "same result" (Value.to_int (Option.get r1.Eval.ret))
    (Value.to_int (Option.get r2.Eval.ret))

(* int/float conversion on assignment preserves declared type *)
let test_int_float_conversion () =
  Alcotest.(check int) "float truncated into int" 3
    (ret_int "int main() { int x; x = 3.9; return x; }")

let test_global_init () =
  Alcotest.(check int) "global initializer" 5
    (ret_int "int g = 5;\nint main() { return g; }")

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "float math builtins" `Quick test_float_math;
    Alcotest.test_case "for loop sum" `Quick test_loop_sum;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "2d arrays" `Quick test_array_2d;
    Alcotest.test_case "inlined call value" `Quick test_function_call_value;
    Alcotest.test_case "block scoping" `Quick test_shadowing_scopes;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "out of bounds" `Quick test_oob_index;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "profile counts" `Quick test_profile_counts;
    Alcotest.test_case "profile work monotone" `Quick test_profile_work_monotone;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "int/float conversion" `Quick test_int_float_conversion;
    Alcotest.test_case "global initializer" `Quick test_global_init;
  ]

(* ------------------------------------------------------------------ *)
(* Additional interpreter semantics                                    *)
(* ------------------------------------------------------------------ *)

let test_bitwise_ops () =
  Alcotest.(check int) "and/or/xor/shift" ((12 land 10) + (12 lor 10) + (12 lxor 10) + (3 lsl 2))
    (ret_int
       "int main() { return (12 & 10) + (12 | 10) + (12 ^ 10) + (3 << 2); }")

let test_mod_and_neg () =
  Alcotest.(check int) "modulo" (17 mod 5) (ret_int "int main() { return 17 % 5; }");
  Alcotest.(check int) "negation" (-7) (ret_int "int main() { return -7; }")

let test_logical_short_circuit_semantics () =
  (* both operands evaluate (no short-circuit in Mini-C), but the result
     must still be correct *)
  Alcotest.(check int) "and" 0 (ret_int "int main() { return 1 && 0; }");
  Alcotest.(check int) "or" 1 (ret_int "int main() { return 0 || 3; }")

let test_comparison_floats () =
  Alcotest.(check int) "float compare" 1
    (ret_int "int main() { return 1.5 < 2.5; }")

let test_builtin_pow_floor () =
  Alcotest.(check int) "pow" 8 (ret_int "int main() { return (int) pow(2.0, 3.0); }");
  Alcotest.(check int) "floor" 3 (ret_int "int main() { return (int) floor(3.9); }");
  Alcotest.(check int) "imin/imax" 7
    (ret_int "int main() { return imin(3, 9) + imax(1, 4); }")

let test_while_never_entered () =
  Alcotest.(check int) "zero-trip while" 5
    (ret_int "int main() { int x; x = 5; while (x < 0) { x = x + 1; } return x; }")

let test_for_zero_trip () =
  let prog =
    Frontend.compile
      "int main() { int i; int s; s = 0; for (i = 10; i < 5; i = i + 1) { s = s + 1; } return s; }"
  in
  let r = Eval.run prog in
  Alcotest.(check int) "zero-trip for" 0 (Value.to_int (Option.get r.Eval.ret))

let test_decl_reinit_per_iteration () =
  (* a declaration inside a loop body re-initializes every iteration *)
  let src =
    "int main() { int i; int s; s = 0; for (i = 0; i < 4; i = i + 1) { int t; t = t + 1; s = s + t; } return s; }"
  in
  (* t is zero-initialized each iteration, so t = 1 every time: s = 4 *)
  Alcotest.(check int) "decl reinit" 4 (ret_int src)

let test_flat_index_layout () =
  (* row-major layout: m[1][2] of a 3x4 array is offset 6 *)
  Alcotest.(check int) "flat index" 6
    (Value.flat_index ~dims:[ 3; 4 ] ~idxs:[ 1; 2 ]);
  match Value.flat_index ~dims:[ 3; 4 ] ~idxs:[ 3; 0 ] with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

let test_profile_if_counts_both_arms () =
  let src =
    {|int main() {
  int i;
  int a;
  int b;
  a = 0;
  b = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { a = a + 1; } else { b = b + 1; }
  }
  return a * 10 + b;
}|}
  in
  Alcotest.(check int) "arms balanced" 55 (ret_int src)

let suite =
  suite
  @ [
      Alcotest.test_case "bitwise ops" `Quick test_bitwise_ops;
      Alcotest.test_case "mod and neg" `Quick test_mod_and_neg;
      Alcotest.test_case "logical ops" `Quick test_logical_short_circuit_semantics;
      Alcotest.test_case "float compare" `Quick test_comparison_floats;
      Alcotest.test_case "pow/floor/imin/imax" `Quick test_builtin_pow_floor;
      Alcotest.test_case "zero-trip while" `Quick test_while_never_entered;
      Alcotest.test_case "zero-trip for" `Quick test_for_zero_trip;
      Alcotest.test_case "decl reinit per iteration" `Quick
        test_decl_reinit_per_iteration;
      Alcotest.test_case "flat index layout" `Quick test_flat_index_layout;
      Alcotest.test_case "if arms counted" `Quick test_profile_if_counts_both_arms;
    ]
