(* Property tests over randomly generated Mini-C programs: the frontend
   round-trips, interpretation is deterministic, HTG construction
   conserves profiled work, realization conserves cycles, and simulated
   speedups stay within theoretical bounds. *)

let pf = Platform.Presets.platform_a_accel

(* ------------------------------------------------------------------ *)
(* Random program generator                                            *)
(* ------------------------------------------------------------------ *)

(* Generates programs over float arrays a,b,c[N] and scalars s,t with a
   random sequence of statement templates.  All programs are type-correct,
   terminate, and avoid division. *)
let gen_program rand =
  let irange lo hi = lo + Random.State.int rand (hi - lo + 1) in
  let n = 32 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "float a[%d]; float b[%d]; float c[%d];\n" n n n);
  Buffer.add_string buf "int main() {\n  int i;\n  float s;\n  float t;\n";
  Buffer.add_string buf "  s = 1.0;\n  t = 2.0;\n";
  let arr () = List.nth [ "a"; "b"; "c" ] (irange 0 2) in
  let expr_of i_ok =
    (* small random arithmetic expression; [i] is only in scope (and in
       bounds) inside loop bodies *)
    let idx = if i_ok then "i" else string_of_int (irange 0 (n - 1)) in
    let atoms =
      [ "s"; "t"; "0.5"; "1.25"; Printf.sprintf "%s[%s]" (arr ()) idx ]
      @ (if i_ok then [ "i * 0.1" ] else [ "3.0" ])
    in
    let atom () = List.nth atoms (irange 0 (List.length atoms - 1)) in
    match irange 0 2 with
    | 0 -> Printf.sprintf "%s + %s" (atom ()) (atom ())
    | 1 -> Printf.sprintf "%s * %s" (atom ()) (atom ())
    | _ -> Printf.sprintf "%s - %s * 0.25" (atom ()) (atom ())
  in
  let n_stmts = irange 3 7 in
  for _k = 1 to n_stmts do
    match irange 0 4 with
    | 0 ->
        (* elementwise DOALL loop *)
        let dst = arr () in
        Buffer.add_string buf
          (Printf.sprintf "  for (i = 0; i < %d; i = i + 1) { %s[i] = %s; }\n" n
             dst (expr_of true))
    | 1 ->
        (* reduction loop (sequential) *)
        Buffer.add_string buf
          (Printf.sprintf
             "  for (i = 0; i < %d; i = i + 1) { s = s + %s[i] * 0.01; }\n" n
             (arr ()))
    | 2 ->
        (* scalar statement *)
        Buffer.add_string buf (Printf.sprintf "  t = %s;\n" (expr_of false))
    | 3 ->
        (* branch *)
        Buffer.add_string buf
          (Printf.sprintf
             "  if (s > t) {\n    s = s * 0.5;\n  } else {\n    t = t + %s;\n  }\n"
             (expr_of false))
    | _ ->
        (* stencil into a distinct array *)
        let src = arr () in
        let dst = arr () in
        if String.equal src dst then
          Buffer.add_string buf
            (Printf.sprintf "  for (i = 0; i < %d; i = i + 1) { %s[i] = %s[i] * 1.1; }\n"
               n dst src)
        else
          Buffer.add_string buf
            (Printf.sprintf
               "  for (i = 1; i < %d; i = i + 1) { %s[i] = %s[i - 1] + %s[i]; }\n"
               n dst src src)
  done;
  Buffer.add_string buf "  return (int) (s * 10.0 + t);\n}\n";
  Buffer.contents buf

let src_arb =
  QCheck.make ~print:(fun s -> s) gen_program

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let compiles_and_roundtrips =
  QCheck.Test.make ~count:40 ~name:"random programs compile and round-trip"
    src_arb (fun src ->
      let prog = Minic.Frontend.compile src in
      let printed = Minic.Pretty.to_string prog in
      let prog2 = Minic.Frontend.compile printed in
      let r1 = Interp.Eval.run prog and r2 = Interp.Eval.run prog2 in
      let v1 = Option.map Interp.Value.to_int r1.Interp.Eval.ret in
      let v2 = Option.map Interp.Value.to_int r2.Interp.Eval.ret in
      v1 = v2
      && r1.Interp.Eval.profile.Interp.Profile.total_work
         = r2.Interp.Eval.profile.Interp.Profile.total_work)

let htg_conserves_work =
  QCheck.Test.make ~count:40 ~name:"HTG conserves profiled work" src_arb
    (fun src ->
      let prog = Minic.Frontend.compile src in
      let r = Interp.Eval.run prog in
      let htg = Htg.Build.build prog r.Interp.Eval.profile in
      let total = r.Interp.Eval.profile.Interp.Profile.total_work in
      Float.abs (htg.Htg.Node.total_cycles -. total) <= (1e-6 *. total) +. 1e-6)

let edges_forward_and_conflicts_valid =
  QCheck.Test.make ~count:40 ~name:"HTG edges forward, conflicts valid" src_arb
    (fun src ->
      let prog = Minic.Frontend.compile src in
      let r = Interp.Eval.run prog in
      let htg = Htg.Build.build prog r.Interp.Eval.profile in
      let ok = ref true in
      let rec check (node : Htg.Node.t) =
        List.iter
          (fun (e : Htg.Node.edge) ->
            match (e.Htg.Node.src, e.Htg.Node.dst) with
            | Htg.Node.EChild i, Htg.Node.EChild j -> if i >= j then ok := false
            | _ -> ())
          node.Htg.Node.edges;
        List.iter
          (fun (x, y) ->
            let k = Array.length node.Htg.Node.children in
            if x < 0 || y < 0 || x >= k || y >= k then ok := false)
          node.Htg.Node.conflicts;
        Array.iter check node.Htg.Node.children
      in
      check htg;
      !ok)

let tiny_cfg =
  {
    Parcore.Config.fast with
    Parcore.Config.ilp_time_limit_s = 0.2;
    ilp_node_limit = 200;
  }

let realization_conserves_cycles =
  QCheck.Test.make ~count:12 ~name:"realization conserves total cycles" src_arb
    (fun src ->
      let out =
        Parcore.Parallelize.run ~cfg:tiny_cfg
          ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf src
      in
      let total = out.Parcore.Parallelize.htg.Htg.Node.total_cycles in
      let realized = Sim.Prog.total_cycles out.Parcore.Parallelize.program in
      Float.abs (realized -. total) <= (1e-6 *. total) +. 1.)

let speedup_within_bounds =
  QCheck.Test.make ~count:12 ~name:"speedup within theoretical bounds" src_arb
    (fun src ->
      let out =
        Parcore.Parallelize.run ~cfg:tiny_cfg
          ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf src
      in
      let s = Parcore.Parallelize.speedup out in
      Float.is_finite s && s > 0.
      && s <= Platform.Desc.theoretical_speedup pf +. 0.01)

let suite =
  [
    QCheck_alcotest.to_alcotest compiles_and_roundtrips;
    QCheck_alcotest.to_alcotest htg_conserves_work;
    QCheck_alcotest.to_alcotest edges_forward_and_conflicts_valid;
    QCheck_alcotest.to_alcotest realization_conserves_cycles;
    QCheck_alcotest.to_alcotest speedup_within_bounds;
  ]
