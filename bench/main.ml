(** Benchmark harness.

    With no arguments it regenerates the paper's full evaluation:
    Figures 7(a)/(b), 8(a)/(b) and Table I (experiments E1-E5 of
    DESIGN.md).  Individual artifacts can be selected by name; [ablation]
    adds the E6 study, [micro] runs the Bechamel component
    micro-benchmarks (E7), and [runtime] measures real host execution of
    the partitioned programs on OCaml 5 domains (E9).

    [perf] times the parallelizer itself (E10) — baseline vs. the
    memoized, warm-started, domain-parallel solve engine — and writes
    [BENCH_parallelize.json]; [perf-smoke] is its quick CI subset.

    {v
      dune exec bench/main.exe                 # E1-E5
      dune exec bench/main.exe -- fig7a table1
      dune exec bench/main.exe -- ablation micro runtime
      dune exec bench/main.exe -- perf         # writes BENCH_parallelize.json
    v} *)

let line () = print_endline (String.make 78 '-')

(* Solver totals aggregated across every parallelize run the selected
   experiments perform; reported by [--metrics] at the end. *)
let agg_stats = Ilp.Stats.create ()

let record_stats (a : Parcore.Algorithm.result) =
  Ilp.Stats.merge ~into:agg_stats a.Parcore.Algorithm.stats

(* ------------------------------------------------------------------ *)
(* E7: Bechamel micro-benchmarks                                       *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let fir = Option.get (Benchsuite.Suite.find "fir_256") in
  let prog = Benchsuite.Suite.compile fir in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  let htg = Htg.Build.build prog profile in
  let pf = Platform.Presets.platform_a_accel in
  (* a small LP for the simplex benchmark *)
  let lp_model () =
    let m = Ilp.Model.create () in
    let xs = List.init 12 (fun i -> Ilp.Model.cont_var m (Printf.sprintf "x%d" i)) in
    List.iteri
      (fun i x ->
        Ilp.Model.le m
          (Ilp.Lin_expr.sum
             [ Ilp.Lin_expr.term x;
               Ilp.Lin_expr.term (List.nth xs ((i + 1) mod 12)) ])
          (Ilp.Lin_expr.constant (4. +. float_of_int i)))
      xs;
    Ilp.Model.set_objective m Ilp.Model.Maximize
      (Ilp.Lin_expr.sum (List.map Ilp.Lin_expr.term xs));
    m
  in
  let milp_model () =
    let m = Ilp.Model.create () in
    let xs = List.init 10 (fun i -> Ilp.Model.bool_var m (Printf.sprintf "b%d" i)) in
    Ilp.Model.le m
      (Ilp.Lin_expr.sum
         (List.mapi
            (fun i x -> Ilp.Lin_expr.term ~coef:(float_of_int (2 + (i mod 4))) x)
            xs))
      (Ilp.Lin_expr.constant 11.);
    Ilp.Model.set_objective m Ilp.Model.Maximize
      (Ilp.Lin_expr.sum
         (List.mapi
            (fun i x -> Ilp.Lin_expr.term ~coef:(float_of_int (3 + (i mod 5))) x)
            xs));
    m
  in
  let quick_src =
    "float a[64];\nint main() { int i; for (i = 0; i < 64; i = i + 1) { a[i] = i * 0.5; } return 0; }"
  in
  let quick_prog = Minic.Frontend.compile quick_src in
  let sim_prog =
    let out =
      Parcore.Parallelize.run_program ~cfg:Parcore.Config.fast ~profile
        ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf prog
    in
    out.Parcore.Parallelize.program
  in
  Test.make_grouped ~name:"mpsoc-par"
    [
      Test.make ~name:"frontend/compile"
        (Staged.stage (fun () -> ignore (Minic.Frontend.compile quick_src)));
      Test.make ~name:"interp/profile-64"
        (Staged.stage (fun () -> ignore (Interp.Eval.run quick_prog)));
      Test.make ~name:"htg/build-fir"
        (Staged.stage (fun () -> ignore (Htg.Build.build prog profile)));
      Test.make ~name:"ilp/simplex-12x12"
        (Staged.stage (fun () -> ignore (Ilp.Simplex.solve (lp_model ()))));
      Test.make ~name:"ilp/branch-bound-knapsack"
        (Staged.stage (fun () -> ignore (Ilp.Branch_bound.solve (milp_model ()))));
      Test.make ~name:"sim/run-fir-parallel"
        (Staged.stage (fun () -> ignore (Sim.Engine.run pf sim_prog)));
      Test.make ~name:"htg+split/loop-candidates"
        (Staged.stage (fun () ->
             let loop =
               Array.to_list htg.Htg.Node.children
               |> List.find (fun (c : Htg.Node.t) -> Htg.Node.is_doall c)
             in
             ignore
               (Parcore.Loop_split.solve
                  {
                    Parcore.Loop_split.node = loop;
                    pf;
                    seq_class = 0;
                    budget = 4;
                    cfg = Parcore.Config.fast;
                  })));
    ]

let run_micro () =
  let open Bechamel in
  print_endline "E7: component micro-benchmarks (Bechamel, monotonic clock)";
  line ();
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> rows := (name, est) :: !rows
          | _ -> ())
        tbl;
      List.iter
        (fun (name, ns) ->
          if ns >= 1e6 then Printf.printf "  %-34s %10.3f ms/run\n" name (ns /. 1e6)
          else if ns >= 1e3 then
            Printf.printf "  %-34s %10.3f us/run\n" name (ns /. 1e3)
          else Printf.printf "  %-34s %10.1f ns/run\n" name ns)
        (List.sort compare !rows))
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E9: host execution — really run the partitioned programs            *)
(* ------------------------------------------------------------------ *)

(* Unlike E1-E5 (simulated makespans on the modelled MPSoC), this
   artifact executes each parallelized benchmark on the host's OCaml 5
   domains and reports measured wall-clock speedup of the runtime over
   its own single-domain execution, plus task/steal counts. *)
let run_host_execution () =
  print_endline
    "E9: host execution on OCaml 5 domains (measured wall clock, not simulated)";
  line ();
  let pf = Platform.Presets.platform_a_accel in
  let domains = min 4 (Domain.recommended_domain_count ()) in
  Printf.printf "  %-16s %10s %10s %8s %7s %7s %7s\n" "benchmark" "1-dom (s)"
    (Printf.sprintf "%d-dom (s)" domains)
    "speedup" "tasks" "steals" "valid";
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      let prog = Benchsuite.Suite.compile b in
      let out =
        Parcore.Parallelize.run_program ~cfg:Parcore.Config.fast
          ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf prog
      in
      record_stats out.Parcore.Parallelize.algo;
      let htg = out.Parcore.Parallelize.htg in
      let sol = out.Parcore.Parallelize.algo.Parcore.Algorithm.root in
      let seq = Runtime.Exec.run ~domains:1 prog htg sol in
      let par = Runtime.Exec.run ~domains prog htg sol in
      let valid = Runtime.Exec.ret_equal par.Runtime.Exec.ret seq.Runtime.Exec.ret in
      let m = par.Runtime.Exec.metrics in
      Printf.printf "  %-16s %10.3f %10.3f %7.2fx %7d %7d %7s\n"
        b.Benchsuite.Suite.name seq.Runtime.Exec.metrics.Runtime.Metrics.wall_s
        m.Runtime.Metrics.wall_s
        (seq.Runtime.Exec.metrics.Runtime.Metrics.wall_s /. m.Runtime.Metrics.wall_s)
        m.Runtime.Metrics.n_tasks_spawned m.Runtime.Metrics.n_steals
        (if valid then "ok" else "FAIL"))
    Benchsuite.Suite.all;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E10: compile-side performance — the parallelizer itself             *)
(* ------------------------------------------------------------------ *)

(* Times end-to-end [Algorithm.parallelize] for the suite under three
   configurations and writes BENCH_parallelize.json so the perf
   trajectory of the solve engine is tracked from this PR onward:

   - [baseline]: the pre-optimization driver — sequential, no solve
     cache, no sweep warm-starting, no deterministic work limit (the
     2 s wall budget per ILP is what bounds hard solves, as it
     historically did);
   - [jobs1]:    the optimized engine on one domain;
   - [jobsN]:    the optimized engine on [recommended_domain_count]
     domains.

   The optimized runs disable the wall budget so the deterministic work
   limit is the only solve bound, and the harness asserts that [jobs1]
   and [jobsN] produce bit-identical solution sets. *)

let perf_baseline_cfg =
  {
    Parcore.Config.default with
    Parcore.Config.jobs = 1;
    solve_cache = false;
    sweep_warm_start = false;
    ilp_work_limit = 0.;
    (* pre-acceleration solver semantics: the baseline column must keep
       measuring the historical search, not the presolved/cut one *)
    ilp_presolve = false;
    ilp_symmetry = false;
    ilp_cuts = false;
    ilp_seed_incumbent = false;
  }

let perf_opt_cfg ~jobs ~work_limit =
  {
    Parcore.Config.default with
    Parcore.Config.jobs = jobs;
    ilp_time_limit_s = infinity;
    ilp_work_limit = work_limit;
  }

(* canonical projection of a parallelization result for bit-identity
   checks: root choice, per-class root set, and every node's set *)
let perf_canon (r : Parcore.Algorithm.result) =
  ( r.Parcore.Algorithm.root,
    r.Parcore.Algorithm.root_set,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.Parcore.Algorithm.sets []) )

type perf_row = {
  pr_name : string;
  pr_baseline_ms : float;
  pr_jobs1_ms : float;
  pr_jobsn_ms : float;
  pr_ilps_baseline : int;
  pr_ilps_opt : int;
  pr_cache_hits : int;
  (* v3 solver-effort counters, from the deterministic jobs=1 run *)
  pr_nodes : int;
  pr_pivots : int;
  pr_cuts : int;
  pr_identical : bool;
  (* v4 solver-portfolio frontier: cold-cache jobs=1 wall time and
     simulated makespan per engine.  The exact makespan is the quality
     reference the CI gate holds the portfolio to. *)
  pr_exact_makespan_us : float;
  pr_port_ms : float;
  pr_port_makespan_us : float;
  pr_port_wins_heur : int;
  pr_port_wins_exact : int;
  pr_port_gap_max : float;
  pr_heur_ms : float;
  pr_heur_makespan_us : float;
}

let run_perf ~smoke () =
  let ncores = Domain.recommended_domain_count () in
  let pf = Platform.Presets.platform_a_accel in
  let benches =
    if smoke then
      List.filter
        (fun (b : Benchsuite.Suite.t) ->
          List.mem b.Benchsuite.Suite.name
            [ "boundary_value"; "compress"; "mult_10" ])
        Benchsuite.Suite.all
    else Benchsuite.Suite.all
  in
  let work_limit =
    if smoke then Parcore.Config.fast.Parcore.Config.ilp_work_limit
    else Parcore.Config.default.Parcore.Config.ilp_work_limit
  in
  Printf.printf
    "E10: compile-side perf — parallelize wall time (ncores=%d%s)\n" ncores
    (if smoke then ", smoke subset" else "");
  line ();
  Printf.printf "  %-16s %12s %11s %11s %6s %6s %5s %6s %8s %5s %8s %5s\n"
    "benchmark" "baseline(ms)" "jobs1(ms)" "jobsN(ms)" "ilp-b" "ilp-o" "hits"
    "nodes" "pivots" "cuts" "speedup" "ident";
  let rows =
    List.map
      (fun (b : Benchsuite.Suite.t) ->
        let prog = Benchsuite.Suite.compile b in
        let profile = (Interp.Eval.run prog).Interp.Eval.profile in
        let once cfg =
          let out =
            Parcore.Parallelize.run_program ~cfg ~profile
              ~approach:Parcore.Parallelize.Heterogeneous ~platform:pf prog
          in
          record_stats out.Parcore.Parallelize.algo;
          out
        in
        let algo (o : Parcore.Parallelize.outcome) = o.Parcore.Parallelize.algo in
        let mk o = (Parcore.Parallelize.metrics o).Sim.Engine.makespan_us in
        let base = algo (once perf_baseline_cfg) in
        let opt1_out = once (perf_opt_cfg ~jobs:1 ~work_limit) in
        let opt1 = algo opt1_out in
        let optn = algo (once (perf_opt_cfg ~jobs:ncores ~work_limit)) in
        let solver_cfg s =
          { (perf_opt_cfg ~jobs:1 ~work_limit) with Parcore.Config.solver = s }
        in
        let port_out = once (solver_cfg Parcore.Config.Portfolio) in
        let heur_out = once (solver_cfg Parcore.Config.Heuristic) in
        let ms (a : Parcore.Algorithm.result) =
          a.Parcore.Algorithm.wall_time_s *. 1000.
        in
        let pstats = (algo port_out).Parcore.Algorithm.stats in
        let row =
          {
            pr_name = b.Benchsuite.Suite.name;
            pr_baseline_ms = ms base;
            pr_jobs1_ms = ms opt1;
            pr_jobsn_ms = ms optn;
            pr_ilps_baseline = base.Parcore.Algorithm.stats.Ilp.Stats.ilps;
            pr_ilps_opt = opt1.Parcore.Algorithm.stats.Ilp.Stats.ilps;
            pr_cache_hits = opt1.Parcore.Algorithm.stats.Ilp.Stats.cache_hits;
            pr_nodes = opt1.Parcore.Algorithm.stats.Ilp.Stats.bb_nodes;
            pr_pivots = opt1.Parcore.Algorithm.stats.Ilp.Stats.pivots;
            pr_cuts = opt1.Parcore.Algorithm.stats.Ilp.Stats.cuts;
            pr_identical = perf_canon opt1 = perf_canon optn;
            pr_exact_makespan_us = mk opt1_out;
            pr_port_ms = ms (algo port_out);
            pr_port_makespan_us = mk port_out;
            pr_port_wins_heur = pstats.Ilp.Stats.wins_heuristic;
            pr_port_wins_exact = pstats.Ilp.Stats.wins_exact;
            pr_port_gap_max = pstats.Ilp.Stats.quality_gap_max;
            pr_heur_ms = ms (algo heur_out);
            pr_heur_makespan_us = mk heur_out;
          }
        in
        Printf.printf
          "  %-16s %12.1f %11.1f %11.1f %6d %6d %5d %6d %8d %5d %7.2fx %5s\n"
          row.pr_name row.pr_baseline_ms row.pr_jobs1_ms row.pr_jobsn_ms
          row.pr_ilps_baseline row.pr_ilps_opt row.pr_cache_hits row.pr_nodes
          row.pr_pivots row.pr_cuts
          (row.pr_baseline_ms /. row.pr_jobsn_ms)
          (if row.pr_identical then "ok" else "FAIL");
        row)
      benches
  in
  print_newline ();
  Printf.printf
    "  solver frontier (cold cache, jobs=1): wall ms / simulated makespan us\n";
  Printf.printf "  %-16s %11s %11s %11s %11s %11s %9s %7s\n" "benchmark"
    "ilp(ms)" "port(ms)" "heur(ms)" "port-mk" "heur-mk" "wins h/e" "gap";
  List.iter
    (fun r ->
      Printf.printf
        "  %-16s %11.1f %11.1f %11.1f %10.4fx %10.4fx %5d/%-3d %6.2f%%\n"
        r.pr_name r.pr_jobs1_ms r.pr_port_ms r.pr_heur_ms
        (r.pr_port_makespan_us /. r.pr_exact_makespan_us)
        (r.pr_heur_makespan_us /. r.pr_exact_makespan_us)
        r.pr_port_wins_heur r.pr_port_wins_exact
        (100. *. r.pr_port_gap_max))
    rows;
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let sumi f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let total_base = sum (fun r -> r.pr_baseline_ms) in
  let total_optn = sum (fun r -> r.pr_jobsn_ms) in
  let total_hits = sumi (fun r -> r.pr_cache_hits) in
  let total_ilps = sumi (fun r -> r.pr_ilps_opt) in
  let total_nodes = sumi (fun r -> r.pr_nodes) in
  let total_pivots = sumi (fun r -> r.pr_pivots) in
  let total_cuts = sumi (fun r -> r.pr_cuts) in
  let hit_rate =
    if total_hits + total_ilps = 0 then 0.
    else float_of_int total_hits /. float_of_int (total_hits + total_ilps)
  in
  let all_identical = List.for_all (fun r -> r.pr_identical) rows in
  let speedup = total_base /. total_optn in
  let total_ilp1 = sum (fun r -> r.pr_jobs1_ms) in
  let total_port = sum (fun r -> r.pr_port_ms) in
  let total_heur = sum (fun r -> r.pr_heur_ms) in
  let total_wins_h = sumi (fun r -> r.pr_port_wins_heur) in
  let total_wins_e = sumi (fun r -> r.pr_port_wins_exact) in
  let worst_gap =
    List.fold_left (fun acc r -> Float.max acc r.pr_port_gap_max) 0. rows
  in
  Printf.printf
    "  total: baseline %.0f ms, optimized jobs=%d %.0f ms — speedup %.2fx, \
     cache hit rate %.1f%%, %d B&B nodes, %d pivots, %d cuts, bit-identical \
     across jobs: %s\n"
    total_base ncores total_optn speedup (100. *. hit_rate) total_nodes
    total_pivots total_cuts
    (if all_identical then "yes" else "NO");
  Printf.printf
    "  frontier: ilp %.0f ms, portfolio %.0f ms (%.2fx faster, wins %d \
     heur / %d exact, worst gap %.2f%%), heuristic %.0f ms (%.2fx faster)\n"
    total_ilp1 total_port
    (total_ilp1 /. total_port)
    total_wins_h total_wins_e (100. *. worst_gap) total_heur
    (total_ilp1 /. total_heur);
  (* hand-rolled JSON: flat schema, no escaping needed for these names *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"mpsoc-par/parallelize-perf/v4\",\n";
  (* provenance header (v2): git rev, compiler, host, UTC timestamp;
     v3 adds the per-benchmark solver-effort counters bb_nodes / pivots /
     cuts_added taken from the deterministic jobs=1 run; v4 adds the
     per-benchmark "solvers" section (cold-cache jobs=1 wall time and
     simulated makespan per engine, plus the portfolio's per-node race
     tallies) and the "frontier" total — what the CI quality gate reads *)
  List.iter
    (fun (k, v) -> Printf.bprintf buf "  %S: %s,\n" k (Trace_json.to_string v))
    (Observe.run_metadata ());
  Printf.bprintf buf "  \"smoke\": %b,\n" smoke;
  Printf.bprintf buf "  \"ncores\": %d,\n" ncores;
  (* the --jobs value the jobsN column actually ran with — host_domains
     alone does not make numbers comparable across machines *)
  Printf.bprintf buf "  \"jobs\": %d,\n" ncores;
  Printf.bprintf buf "  \"platform\": %S,\n" pf.Platform.Desc.name;
  Printf.bprintf buf "  \"work_limit\": %.0f,\n" work_limit;
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf buf
        "    { \"name\": %S, \"baseline_ms\": %.1f, \"jobs1_ms\": %.1f, \
         \"jobsN_ms\": %.1f, \"ilps_baseline\": %d, \"ilps_optimized\": %d, \
         \"cache_hits\": %d, \"bb_nodes\": %d, \"pivots\": %d, \
         \"cuts_added\": %d, \"speedup\": %.3f, \"identical\": %b,\n\
        \      \"solvers\": {\n\
        \        \"ilp\": { \"wall_ms\": %.1f, \"makespan_us\": %.1f },\n\
        \        \"portfolio\": { \"wall_ms\": %.1f, \"makespan_us\": %.1f, \
         \"engine_wins\": { \"heuristic\": %d, \"exact\": %d }, \
         \"quality_gap_max\": %.6f },\n\
        \        \"heuristic\": { \"wall_ms\": %.1f, \"makespan_us\": %.1f } \
         } }%s\n"
        r.pr_name r.pr_baseline_ms r.pr_jobs1_ms r.pr_jobsn_ms
        r.pr_ilps_baseline r.pr_ilps_opt r.pr_cache_hits r.pr_nodes r.pr_pivots
        r.pr_cuts
        (r.pr_baseline_ms /. r.pr_jobsn_ms)
        r.pr_identical r.pr_jobs1_ms r.pr_exact_makespan_us r.pr_port_ms
        r.pr_port_makespan_us r.pr_port_wins_heur r.pr_port_wins_exact
        r.pr_port_gap_max r.pr_heur_ms r.pr_heur_makespan_us
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"total\": { \"baseline_ms\": %.1f, \"optimized_ms\": %.1f, \
     \"speedup\": %.3f, \"cache_hit_rate\": %.3f, \"bb_nodes\": %d, \
     \"pivots\": %d, \"cuts_added\": %d, \"identical\": %b },\n"
    total_base total_optn speedup hit_rate total_nodes total_pivots total_cuts
    all_identical;
  Printf.bprintf buf
    "  \"frontier\": { \"ilp_ms\": %.1f, \"portfolio_ms\": %.1f, \
     \"heuristic_ms\": %.1f, \"portfolio_speedup\": %.3f, \"engine_wins\": \
     { \"heuristic\": %d, \"exact\": %d }, \"quality_gap_max\": %.6f }\n"
    total_ilp1 total_port total_heur
    (total_ilp1 /. total_port)
    total_wins_h total_wins_e worst_gap;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_parallelize.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  written to BENCH_parallelize.json\n";
  print_newline ();
  if not all_identical then exit 1

(* ------------------------------------------------------------------ *)
(* E11: serve-side saturation — executor-pool scaling under load       *)
(* ------------------------------------------------------------------ *)

(* Drives the resident daemon with the load generator over an
   offered-QPS ladder and locates the saturation point — the highest
   rung whose achieved throughput stays within 5% of the offered rate —
   for 1 and 2 executor workers.  The solve cache is disabled so every
   request costs a real solve; with the hot memo on, the first request
   warms it and the ladder would measure protocol plumbing, not the
   engine.  Results merge into BENCH_parallelize.json under
   "serve_saturation" (read-modify-write: the E10 sections are kept). *)

(* small but parallelizable: two independent DOALL loops; a fresh solve
   costs ~0.5 s, so a single executor saturates around 2 rps *)
let sat_src =
  {|
float a[256]; float b[256];
int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) { a[i] = sin(i * 0.01) * 2.0; }
  for (i = 0; i < 256; i = i + 1) { b[i] = cos(i * 0.02) + 1.0; }
  return (int) (a[5] + b[7]);
}
|}

let sat_rpc sock req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Serve.Protocol.write_request fd req;
      match Serve.Protocol.read_response fd with
      | `Response r -> r
      | `Eof | `Error _ -> failwith "serve-sat: rpc failed")

let run_serve_sat () =
  let module J = Trace_json in
  let ladder = [ 2.; 4.; 8. ] in
  let requests = 12 and concurrency = 4 in
  Printf.printf
    "E11: serve saturation — %d requests/rung, %d connections, offered %s rps\n"
    requests concurrency
    (String.concat "/" (List.map (Printf.sprintf "%g") ladder));
  let measure executors =
    let dir = Filename.temp_file "serve-sat" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let target = Filename.concat dir "prog.c" in
    let oc = open_out target in
    output_string oc sat_src;
    close_out oc;
    let sock = Filename.concat dir "s.sock" in
    let cfg =
      { Parcore.Config.fast with Parcore.Config.solve_cache = false }
    in
    let server =
      Domain.spawn (fun () ->
          Serve.Daemon.run
            {
              Serve.Daemon.default_config with
              Serve.Daemon.socket_path = sock;
              executors;
              cfg;
            })
    in
    let rec wait n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> Unix.close fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if n = 0 then failwith "serve-sat: daemon never came up";
          Unix.sleepf 0.05;
          wait (n - 1)
    in
    wait 100;
    let rungs =
      List.map
        (fun qps ->
          let r =
            Serve.Loadgen.run_result
              {
                Serve.Loadgen.default_config with
                Serve.Loadgen.socket_path = sock;
                targets = [ target ];
                platform = "platform-a-accel";
                qps;
                concurrency;
                requests;
                report_path = None;
              }
          in
          Printf.printf
            "  executors=%d offered %5.1f rps -> achieved %5.2f rps, p50 \
             %7.1f ms, p99 %7.1f ms\n\
             %!"
            executors qps r.Serve.Loadgen.throughput_rps
            r.Serve.Loadgen.latency.Serve.Latency.p50_ms
            r.Serve.Loadgen.latency.Serve.Latency.p99_ms;
          (qps, r))
        ladder
    in
    ignore
      (sat_rpc sock (Serve.Protocol.request ~id:"drain" Serve.Protocol.Drain));
    let code = Domain.join server in
    if code <> 0 then Printf.eprintf "serve-sat: daemon exit %d\n" code;
    (try Unix.unlink target with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    rungs
  in
  let saturation rungs =
    List.fold_left
      (fun acc (qps, r) ->
        if r.Serve.Loadgen.throughput_rps >= 0.95 *. qps then Float.max acc qps
        else acc)
      0. rungs
  in
  let section_of rungs =
    J.Obj
      [
        ("saturation_rps", J.Num (saturation rungs));
        ( "rungs",
          J.List
            (List.map
               (fun (qps, (r : Serve.Loadgen.result)) ->
                 J.Obj
                   [
                     ("offered_rps", J.Num qps);
                     ("achieved_rps", J.Num r.Serve.Loadgen.throughput_rps);
                     ( "p50_ms",
                       J.Num r.Serve.Loadgen.latency.Serve.Latency.p50_ms );
                     ( "p99_ms",
                       J.Num r.Serve.Loadgen.latency.Serve.Latency.p99_ms );
                     ("rejected", J.Num (float_of_int r.Serve.Loadgen.rejected));
                   ])
               rungs) );
      ]
  in
  let r1 = measure 1 in
  let r2 = measure 2 in
  Printf.printf "  saturation: executors=1 at %g rps, executors=2 at %g rps\n"
    (saturation r1) (saturation r2);
  let section =
    J.Obj
      [
        ("requests_per_rung", J.Num (float_of_int requests));
        ("concurrency", J.Num (float_of_int concurrency));
        ("solve_cache", J.Bool false);
        (* executor scaling is bounded by the host: on a single-core
           runner the two-worker numbers measure contention, not
           parallelism *)
        ( "host_domains",
          J.Num (float_of_int (Domain.recommended_domain_count ())) );
        ("executors_1", section_of r1);
        ("executors_2", section_of r2);
      ]
  in
  let path = "BENCH_parallelize.json" in
  let merged =
    let fresh () = J.Obj (Observe.run_metadata ()) in
    let doc =
      match In_channel.with_open_bin path In_channel.input_all with
      | txt -> ( try J.parse txt with _ -> fresh ())
      | exception Sys_error _ -> fresh ()
    in
    match doc with
    | J.Obj fields ->
        J.Obj
          (List.filter (fun (k, _) -> k <> "serve_saturation") fields
          @ [ ("serve_saturation", section) ])
    | _ -> J.Obj [ ("serve_saturation", section) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true merged);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  merged into %s\n" path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv |> List.tl in
  (* --trace FILE / --metrics FILE arm the span recorder around the
     selected experiments; everything else is an experiment id *)
  let rec parse trace metrics acc = function
    | "--trace" :: f :: rest -> parse (Some f) metrics acc rest
    | "--metrics" :: f :: rest -> parse trace (Some f) acc rest
    | a :: rest -> parse trace metrics (a :: acc) rest
    | [] -> (trace, metrics, List.rev acc)
  in
  let trace_file, metrics_file, args = parse None None [] argv in
  let armed = trace_file <> None || metrics_file <> None in
  if armed then Trace.start ();
  let t0 = Trace.now_s () in
  let which = if args = [] then [ "fig7a"; "fig7b"; "fig8a"; "fig8b"; "table1" ] else args in
  let ctx = Report.Experiments.create () in
  List.iter
    (fun id ->
      Trace.span ~cat:"phase" id @@ fun () ->
      (match id with
      | "fig7a" -> print_string (Report.Experiments.(render_figure (fig7a ctx)))
      | "fig7b" -> print_string (Report.Experiments.(render_figure (fig7b ctx)))
      | "fig8a" -> print_string (Report.Experiments.(render_figure (fig8a ctx)))
      | "fig8b" -> print_string (Report.Experiments.(render_figure (fig8b ctx)))
      | "table1" -> print_string (Report.Experiments.(render_table1 (table1 ctx)))
      | "ablation" ->
          print_string
            (Report.Experiments.(
               render_ablation (ablation ctx Platform.Presets.platform_a_accel)))
      | "energy" ->
          print_string
            (Report.Experiments.(
               render_energy (energy_table ctx Platform.Presets.platform_a_accel)))
      | "micro" -> run_micro ()
      | "runtime" -> run_host_execution ()
      | "perf" -> run_perf ~smoke:false ()
      | "perf-smoke" -> run_perf ~smoke:true ()
      | "serve-sat" -> run_serve_sat ()
      | other ->
          Printf.eprintf
            "unknown experiment %S (expected fig7a fig7b fig8a fig8b table1 \
             ablation energy micro runtime perf perf-smoke serve-sat)\n"
            other;
          exit 1);
      line ())
    which;
  if armed then
    match Trace.stop () with
    | None -> ()
    | Some c ->
        Option.iter (fun path -> Trace_chrome.write ~path c) trace_file;
        Option.iter
          (fun path ->
            Observe.write_json ~path
              (Observe.metrics_doc ~generated_by:"bench/main.exe"
                 ~phases:(Observe.phases_of_events c.Trace.events)
                 ~wall_s:(Trace.now_s () -. t0)
                 agg_stats))
          metrics_file
