(* Defining a platform from the textual description format and watching
   the parallelizer offload a sequential computation chain to a faster
   accelerator class — the "task offloading" pattern of e.g. TI OMAP4
   (fast A9s next to slower M3s), which class-oblivious tools cannot
   exploit.

   Run with:  dune exec examples/custom_platform.exe *)

let description =
  {|
platform omap-like
# the sequential application runs on the slow controller core
class m3  freq 150 count 2 main
# two fast cores are available as accelerators
class a9  freq 600 cpi 0.9 count 2
bus startup 1.5 per_byte 0.004
tco 3.0
|}

(* latnrm's lattice recurrence cannot be split into tasks, but it CAN be
   moved to a faster class wholesale. *)
let () =
  let platform = Platform.Parse.of_string description in
  Fmt.pr "parsed platform: %a@.@." Platform.Desc.pp_summary platform;
  let bench = Option.get (Benchsuite.Suite.find "latnrm_32") in
  let out =
    Parcore.Parallelize.run ~approach:Parcore.Parallelize.Heterogeneous
      ~platform bench.Benchsuite.Suite.source
  in
  print_endline
    (Parcore.Annotate.specification platform out.Parcore.Parallelize.htg
       out.Parcore.Parallelize.algo.Parcore.Algorithm.root);
  Fmt.pr "@.pre-mapping:@.";
  List.iter
    (fun (task, cls) -> Fmt.pr "  %s -> %s@." task cls)
    (Parcore.Annotate.pre_mapping platform out.Parcore.Parallelize.htg
       out.Parcore.Parallelize.algo.Parcore.Algorithm.root);
  Fmt.pr "@.speedup: %.2fx (theoretical max %.2fx)@."
    (Parcore.Parallelize.speedup out)
    (Platform.Desc.theoretical_speedup platform);
  Fmt.pr
    "the sequential lattice chain lands on the fast a9 class even though \
     no task parallelism exists in it — that is the mapping dimension the \
     heterogeneous ILP adds.@."
