(* Design-space exploration on an ARM big.LITTLE-style platform: how do
   the task-creation overhead and the bus bandwidth change the granularity
   the parallelizer picks and the speedup it achieves?

   This is the kind of what-if study the platform-description input of the
   paper's tool flow enables: nothing but the description changes.

   Run with:  dune exec examples/biglittle_explore.exe *)

let base = Platform.Presets.biglittle

let with_overheads ~tco_us ~per_byte_us =
  {
    base with
    Platform.Desc.tco_us;
    comm = Platform.Comm.make ~startup_us:2.0 ~per_byte_us;
  }

(* an 8-core platform makes the per-node ILPs noticeably larger; a tight
   per-ILP budget keeps this demo interactive without changing the
   decisions on this kernel *)
let cfg = { Parcore.Config.default with Parcore.Config.ilp_time_limit_s = 0.5 }

let () =
  let bench = Option.get (Benchsuite.Suite.find "fir_256") in
  let prog = Benchsuite.Suite.compile bench in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  Fmt.pr "benchmark: %s on a big.LITTLE-style platform (4x little + 4x big)@.@."
    bench.Benchsuite.Suite.name;
  Fmt.pr "%-12s %-14s %10s %10s@." "tco (us)" "bus (us/byte)" "speedup"
    "tasks";
  List.iter
    (fun (tco_us, per_byte_us) ->
      let platform = with_overheads ~tco_us ~per_byte_us in
      let out =
        Parcore.Parallelize.run_program ~cfg ~profile
          ~approach:Parcore.Parallelize.Heterogeneous ~platform prog
      in
      Fmt.pr "%-12.1f %-14.4f %9.2fx %10d@." tco_us per_byte_us
        (Parcore.Parallelize.speedup out)
        (Sim.Prog.max_width out.Parcore.Parallelize.program))
    [
      (0.5, 0.001);
      (2.0, 0.005);
      (50.0, 0.005);
      (2.0, 0.5);
      (200.0, 1.0);
    ];
  Fmt.pr
    "@.cheap overheads let the tool split wide; expensive task creation or \
     a slow bus pushes it back toward coarse tasks or sequential code.@."
