(* Quickstart: parallelize a small sequential Mini-C program for a
   heterogeneous 4-core platform and inspect everything the library
   produces — the task graph, the parallel specification, the task-to-
   class pre-mapping, and the simulated speedup.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
/* a small signal pipeline: generate, filter, reduce */
float signal[1024];
float smooth[1024];

int main() {
  int i;
  float energy;

  /* stage 1: synthesize the input (parallel) */
  for (i = 0; i < 1024; i = i + 1) {
    signal[i] = sin(i * 0.02) + 0.25 * sin(i * 0.07);
  }

  /* stage 2: 3-point smoothing (parallel) */
  smooth[0] = signal[0];
  smooth[1023] = signal[1023];
  for (i = 1; i < 1023; i = i + 1) {
    smooth[i] = 0.25 * signal[i - 1] + 0.5 * signal[i] + 0.25 * signal[i + 1];
  }

  /* stage 3: energy (sequential reduction) */
  energy = 0.0;
  for (i = 0; i < 1024; i = i + 1) {
    energy = energy + smooth[i] * smooth[i];
  }
  return (int) energy;
}
|}

let () =
  (* Platform A of the paper: one 100 MHz core (the main processor), one
     250 MHz core and two 500 MHz cores, shared bus, 2 us task creation
     overhead. *)
  let platform = Platform.Presets.platform_a_accel in
  Fmt.pr "platform: %a@.@." Platform.Desc.pp_summary platform;

  (* One call runs the whole flow: frontend -> profiling -> hierarchical
     task graph -> ILP parallelization -> implementation. *)
  let out =
    Parcore.Parallelize.run ~approach:Parcore.Parallelize.Heterogeneous
      ~platform source
  in

  (* What did the tool decide?  The parallel specification shows the task
     partitioning, per-task processor classes and chunked loop splits. *)
  print_endline
    (Parcore.Annotate.specification platform out.Parcore.Parallelize.htg
       out.Parcore.Parallelize.algo.Parcore.Algorithm.root);

  (* And what is it worth?  The MPSoC simulator executes both versions. *)
  Fmt.pr "@.simulated speedup: %.2fx (theoretical maximum %.2fx)@."
    (Parcore.Parallelize.speedup out)
    (Platform.Desc.theoretical_speedup platform);

  (* The homogeneous baseline [6] on the same program, for contrast. *)
  let homo =
    Parcore.Parallelize.run ~approach:Parcore.Parallelize.Homogeneous ~platform
      source
  in
  Fmt.pr "homogeneous baseline [6]: %.2fx@." (Parcore.Parallelize.speedup homo)
