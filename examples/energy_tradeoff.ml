(* Energy accounting — the objective the paper names as future work
   ("we will also consider taking other objectives into account, like,
   e.g., energy consumption").

   The simulator attributes active energy to every core using the
   per-class power model (fast cores burn more energy per cycle).  This
   example compares sequential, homogeneous-parallelized and
   heterogeneous-parallelized execution of one benchmark by runtime,
   energy, and energy-delay product.

   Run with:  dune exec examples/energy_tradeoff.exe *)

let () =
  let platform = Platform.Presets.platform_a_accel in
  let bench = Option.get (Benchsuite.Suite.find "edge_detect") in
  let prog = Benchsuite.Suite.compile bench in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  let het =
    Parcore.Parallelize.run_program ~profile
      ~approach:Parcore.Parallelize.Heterogeneous ~platform prog
  in
  let homo =
    Parcore.Parallelize.run_program ~profile
      ~approach:Parcore.Parallelize.Homogeneous ~platform prog
  in
  let seq_m = Sim.Engine.run_metrics platform het.Parcore.Parallelize.seq_program in
  let homo_m = Sim.Engine.run_metrics platform homo.Parcore.Parallelize.program in
  let het_m = Sim.Engine.run_metrics platform het.Parcore.Parallelize.program in
  Fmt.pr "benchmark %s on %a@.@." bench.Benchsuite.Suite.name
    Platform.Desc.pp_summary platform;
  Fmt.pr "%-14s %12s %12s %14s@." "version" "time (ms)" "energy (uJ)"
    "EDP (uJ*ms)";
  List.iter
    (fun (label, (m : Sim.Engine.metrics)) ->
      Fmt.pr "%-14s %12.2f %12.0f %14.0f@." label
        (m.Sim.Engine.makespan_us /. 1000.)
        m.Sim.Engine.energy_uj
        (m.Sim.Engine.energy_uj *. m.Sim.Engine.makespan_us /. 1000.))
    [ ("sequential", seq_m); ("homogeneous", homo_m); ("heterogeneous", het_m) ];
  Fmt.pr
    "@.parallel versions spend more total energy (the fast cores are less \
     efficient per cycle) but finish so much earlier that the energy-delay \
     product improves dramatically — the classic race-to-idle argument.@."
