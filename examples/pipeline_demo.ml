(* Pipeline parallelism — the parallelism type the paper defers to future
   work, implemented here as an opt-in extension.

   The kernel below is a chain of three filter stages, each with its own
   carried state: it is not DOALL (every iteration depends on the previous
   one) and not task-parallel (the statements form a chain), so the
   paper's task-level approach leaves it sequential.  With
   [Config.enable_pipeline] the stages overlap across iterations and the
   ILP balances them over the processor classes.

   Run with:  dune exec examples/pipeline_demo.exe *)

let source =
  {|
float x[2048]; float y1[2048]; float y2[2048]; float out[2048];
int main() {
  int n;
  float s1;
  float s2;
  float s3;
  s1 = 0.1;
  s2 = 0.2;
  s3 = 0.3;
  for (n = 0; n < 2048; n = n + 1) { x[n] = sin(n * 0.01); }
  for (n = 0; n < 2048; n = n + 1) {
    s1 = s1 * 0.9 + x[n];
    y1[n] = sqrt(fabs(s1)) + s1 * s1;
    s2 = s2 * 0.8 + y1[n];
    y2[n] = sin(s2) + cos(s2) * 0.5;
    s3 = s3 * 0.7 + y2[n];
    out[n] = s3 * 1.01 + y2[n] * 0.25;
  }
  return (int) (out[100] * 100.0);
}
|}

let () =
  let platform = Platform.Presets.platform_b_accel in
  Fmt.pr "platform: %a@.@." Platform.Desc.pp_summary platform;
  let run cfg label =
    let out =
      Parcore.Parallelize.run ~cfg ~approach:Parcore.Parallelize.Heterogeneous
        ~platform source
    in
    Fmt.pr "=== %s: speedup %.2fx ===@." label (Parcore.Parallelize.speedup out);
    print_endline
      (Parcore.Annotate.specification platform out.Parcore.Parallelize.htg
         out.Parcore.Parallelize.algo.Parcore.Algorithm.root);
    out
  in
  let _task_level = run Parcore.Config.default "task-level only (the paper)" in
  let with_pipe =
    run
      { Parcore.Config.default with Parcore.Config.enable_pipeline = true }
      "with the pipeline extension"
  in
  Fmt.pr "@.simulated schedule with pipelining:@.";
  print_string
    (Sim.Engine.gantt platform
       (Sim.Engine.trace platform with_pipe.Parcore.Parallelize.program))
