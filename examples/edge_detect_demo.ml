(* Domain example: the UTDSP edge_detect benchmark end to end on both of
   the paper's evaluation scenarios of platform A.

   Scenario I ("accelerator"): the sequential application lives on the
   slow 100 MHz core, the faster cores act as accelerators.  Scenario II
   ("slower cores"): the application lives on a fast 500 MHz core and the
   slow cores were added for power/thermal reasons.  The same source gets
   a different partitioning, balancing and mapping in each.

   Run with:  dune exec examples/edge_detect_demo.exe *)

let () =
  let bench = Option.get (Benchsuite.Suite.find "edge_detect") in
  let prog = Benchsuite.Suite.compile bench in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  Fmt.pr "benchmark: %s — %s@.@." bench.Benchsuite.Suite.name
    bench.Benchsuite.Suite.description;

  List.iter
    (fun (label, platform) ->
      Fmt.pr "=== %s ===@." label;
      Fmt.pr "platform: %a@." Platform.Desc.pp_summary platform;
      let het =
        Parcore.Parallelize.run_program ~profile
          ~approach:Parcore.Parallelize.Heterogeneous ~platform prog
      in
      let homo =
        Parcore.Parallelize.run_program ~profile
          ~approach:Parcore.Parallelize.Homogeneous ~platform prog
      in
      print_endline
        (Parcore.Annotate.specification platform het.Parcore.Parallelize.htg
           het.Parcore.Parallelize.algo.Parcore.Algorithm.root);
      Fmt.pr "speedups: heterogeneous %.2fx | homogeneous [6] %.2fx | max %.2fx@.@."
        (Parcore.Parallelize.speedup het)
        (Parcore.Parallelize.speedup homo)
        (Platform.Desc.theoretical_speedup platform))
    [
      ("scenario I: accelerator", Platform.Presets.platform_a_accel);
      ("scenario II: slower cores", Platform.Presets.platform_a_slow);
    ]
